"""Native shuffle kernels: C paths must be invisible optimizations.

Every kernel in ``src/repro/native/_shuffle.c`` mirrors a pure-Python
loop; these tests pin the contract three ways: bit-level parity of the
primitives (CRC/hash/partition/sort/group/frame/scan/merge) against
their Python references, byte-identical ``.mrsb`` files and split
assignments between ``MRS_NATIVE=on`` and ``off`` over random
mixed-type batches (hypothesis), and graceful-fallback behavior of the
compile/cache layer (``CC`` honored, ``auto`` silent, ``on`` loud).

Kernel-parity tests skip when no compiler is available; the fallback
tests run everywhere.
"""

import heapq
import io
import os
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.io import formats
from repro.io.bucket import (
    Bucket,
    FileBucket,
    group_sorted_records,
    native_merge_plan,
    native_merged_groups,
    record_key,
)
from repro.io.partition import hash_partition_bytes, hash_partition_splits
from repro.io.serializers import get_serializer
from repro.native import compile as native_compile
from repro.native import kernels
from repro.native.compile import CompilerUnavailable
from repro.util.hashing import key_to_bytes, stable_hash_bytes

HAVE_COMPILER = native_compile.find_compiler() is not None

needs_compiler = pytest.mark.skipif(
    not HAVE_COMPILER, reason="no C compiler available"
)


@pytest.fixture
def native():
    kernels.set_mode("auto")
    lib = kernels.get()
    if lib is None:
        pytest.skip("native kernels unavailable")
    yield lib
    kernels.set_mode("auto")


@pytest.fixture
def native_off(monkeypatch):
    """Force the pure-Python path for the duration of a test."""
    kernels.set_mode("off")
    yield
    kernels.set_mode("auto")


# ---------------------------------------------------------------------
# Primitive parity
# ---------------------------------------------------------------------


@needs_compiler
class TestPrimitives:
    def test_crc_and_hash_match_zlib(self, native):
        for data in [b"", b"a", b"hello world", bytes(range(256)) * 7]:
            assert native.crc32(data) == zlib.crc32(data)
            assert native.hash64(data) == stable_hash_bytes(data)

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_hash64_property(self, data):
        lib = kernels.get()
        assert lib is not None
        assert lib.hash64(data) == stable_hash_bytes(data)

    def test_splits_match_scalar_partitioner(self, native):
        keys = [key_to_bytes(k) for k in ["a", "bb", 3, (4, "x"), b"raw", 2.5]]
        keys = keys * 20
        for n_splits in (1, 2, 7, 64):
            got = list(hash_partition_splits(keys, n_splits))
            want = [hash_partition_bytes(kb, n_splits) for kb in keys]
            assert got == want

    def test_partition_scatter_is_stable(self, native):
        keys = [key_to_bytes(f"k{i % 13}") for i in range(500)]
        order, bounds = native.partition_scatter(keys, 5)
        want = [hash_partition_bytes(kb, 5) for kb in keys]
        for split in range(5):
            got_idx = list(order[bounds[split]:bounds[split + 1]])
            assert got_idx == [i for i, s in enumerate(want) if s == split]

    def test_sort_index_matches_stable_python_sort(self, native):
        keys = [key_to_bytes(k) for k in [5, "b", "a", 5, b"a", "a", 1.5, "b"]]
        keys = keys * 16
        assert list(native.sort_index(keys)) == sorted(
            range(len(keys)), key=keys.__getitem__
        )

    def test_group_scatter_matches_dict_grouping(self, native):
        raw = [f"w{i % 9}" for i in range(300)]
        keys = [key_to_bytes(k) for k in raw]
        bucket = Bucket()
        for i, (kb, word) in enumerate(zip(keys, raw)):
            bucket.addpair((word, i), kb)
        want = bucket.hash_grouped_records()
        ngroups, order, bounds = native.group_scatter(keys)
        assert ngroups == len(want)
        for g, (kb, key, values) in enumerate(want):
            lo, hi = bounds[g], bounds[g + 1]
            assert all(keys[i] == kb for i in order[lo:hi])
            assert [bucket[i][1] for i in order[lo:hi]] == values

    def test_sorted_grouped_lists_matches_pure(self, native):
        raw = [(f"w{(i * 7) % 11}", i) for i in range(400)]
        native_bucket, pure_bucket = Bucket(), Bucket()
        for pair in raw:
            native_bucket.addpair(pair)
            pure_bucket.addpair(pair)
        got = native_bucket.sorted_grouped_lists()
        kernels.set_mode("off")
        try:
            want = pure_bucket.sorted_grouped_lists()
        finally:
            kernels.set_mode("auto")
        assert got == want

    def test_frame_scan_roundtrip(self, native):
        header = struct.Struct("!II")
        keys = [b"", b"k", b"key" * 50]
        values = [b"v", b"", b"value" * 99]
        want = b"".join(
            header.pack(len(k), len(v)) + k + v for k, v in zip(keys, values)
        )
        framed = bytes(native.frame(keys, values))
        assert framed == want
        count, triples = native.scan(framed)
        assert count == len(keys)
        got = [
            (
                framed[triples[3 * i]:triples[3 * i + 1]],
                framed[triples[3 * i + 1]:triples[3 * i + 2]],
            )
            for i in range(count)
        ]
        assert got == list(zip(keys, values))
        # A truncated tail parses to one fewer record.
        count, _ = native.scan(framed[:-1])
        assert count == len(keys) - 1


# ---------------------------------------------------------------------
# Merge parity
# ---------------------------------------------------------------------


def _write_sorted_file(path, pairs):
    """Write key-sorted (str, int) pairs as a canonical .mrsb bucket."""
    with open(path, "wb") as f:
        writer = formats.BinWriter(
            f,
            key_serializer=get_serializer("str"),
            value_serializer=get_serializer("int"),
        )
        writer.writerecords([(key_to_bytes(k), (k, v)) for k, v in pairs])
        writer.finish()


@needs_compiler
class TestNativeMerge:
    def _make_buckets(self, tmp_path, streams):
        buckets = []
        for source, pairs in enumerate(streams):
            path = tmp_path / f"m_{source}_0.mrsb"
            _write_sorted_file(str(path), pairs)
            bucket = Bucket(source=source, split=0, url=f"file:{path}")
            bucket.url_sorted = True
            bucket.key_serializer = "str"
            bucket.value_serializer = "int"
            buckets.append(bucket)
        return buckets

    def test_matches_heapq_merge_and_grouping(self, tmp_path, native):
        streams = [
            sorted((f"k{(i * j) % 17}", i) for i in range(40))
            for j in range(1, 5)
        ] + [[]]  # one empty stream
        buckets = self._make_buckets(tmp_path, streams)
        plan = native_merge_plan(buckets)
        assert plan is not None
        got = [
            (kb, key, list(values))
            for kb, key, values in native_merged_groups(plan, "str", "int")
        ]
        decorated = [
            sorted(((key_to_bytes(k), (k, v)) for k, v in pairs))
            for pairs in streams
        ]
        want = [
            (kb, key, list(values))
            for kb, key, values in group_sorted_records(
                heapq.merge(*map(iter, decorated), key=record_key)
            )
        ]
        assert got == want

    def test_tie_break_prefers_lower_stream(self, tmp_path, native):
        # Equal keys in several streams: heapq.merge yields stream 0's
        # records first, and record order within a stream is preserved.
        streams = [[("dup", 100 + i) for i in range(3)] for _ in range(3)]
        buckets = self._make_buckets(tmp_path, streams)
        plan = native_merge_plan(buckets)
        assert plan is not None
        ((_, _, values),) = list(native_merged_groups(plan, "str", "int"))
        assert values == [100, 101, 102] * 3

    def test_plan_rejects_unsorted_and_nonlocal(self, tmp_path, native):
        buckets = self._make_buckets(tmp_path, [[("a", 1)], [("b", 2)]])
        assert native_merge_plan(buckets) is not None
        buckets[1].url_sorted = False
        assert native_merge_plan(buckets) is None
        buckets[1].url_sorted = True
        buckets[1].url = "http://example/bucket.mrsb"
        assert native_merge_plan(buckets) is None

    def test_plan_rejects_pickle_keys(self, tmp_path, native):
        buckets = self._make_buckets(tmp_path, [[("a", 1)]])
        buckets[0].key_serializer = None  # default pickle: no tag
        assert native_merge_plan(buckets) is None

    def test_plan_off_without_kernels(self, tmp_path, native_off):
        bucket = Bucket(source=0, split=0, url="file:/nonexistent.mrsb")
        bucket.url_sorted = True
        bucket.key_serializer = "str"
        assert native_merge_plan([bucket]) is None


# ---------------------------------------------------------------------
# Property: native and pure paths are byte-identical
# ---------------------------------------------------------------------

mixed_keys = st.one_of(
    st.text(max_size=8),
    st.binary(max_size=8),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.booleans(),
    st.tuples(st.text(max_size=3), st.integers(-100, 100)),
)
mixed_values = st.one_of(
    st.integers(-(2**40), 2**40), st.text(max_size=12), st.none()
)
batches = st.lists(st.tuples(mixed_keys, mixed_values), max_size=120)


@needs_compiler
class TestModeByteIdentity:
    @given(batch=batches, n_splits=st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_splits_identical(self, batch, n_splits):
        keys = [key_to_bytes(k) for k, _ in batch]
        kernels.set_mode("auto")
        assert kernels.get() is not None
        native = list(hash_partition_splits(keys, n_splits))
        kernels.set_mode("off")
        try:
            pure = list(hash_partition_splits(keys, n_splits))
        finally:
            kernels.set_mode("auto")
        assert native == pure

    @given(batch=batches)
    @settings(max_examples=60, deadline=None)
    def test_mrsb_files_identical(self, batch):
        # Pickle-serializer records exercise the generic writer; the
        # canonical tag path is covered by str keys below.
        outputs = {}
        for mode in ("auto", "off"):
            kernels.set_mode(mode)
            try:
                buf = io.BytesIO()
                writer = formats.BinWriter(buf)
                writer.writerecords(
                    [(key_to_bytes(k), (k, v)) for k, v in batch]
                )
                outputs[mode] = buf.getvalue()
            finally:
                kernels.set_mode("auto")
        assert outputs["auto"] == outputs["off"]

    @given(words=st.lists(st.text(min_size=1, max_size=6), max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_canonical_str_files_and_readback_identical(self, words):
        records = [(key_to_bytes(w), (w, 1)) for w in words]
        outputs = {}
        for mode in ("auto", "off"):
            kernels.set_mode(mode)
            try:
                buf = io.BytesIO()
                writer = formats.BinWriter(
                    buf,
                    key_serializer=get_serializer("str"),
                    value_serializer=get_serializer("int"),
                )
                writer.writerecords(records)
                data = buf.getvalue()
                reader = formats.BinReader(
                    io.BytesIO(data),
                    key_serializer=get_serializer("str"),
                    value_serializer=get_serializer("int"),
                )
                outputs[mode] = (data, list(reader.iter_records()))
            finally:
                kernels.set_mode("auto")
        assert outputs["auto"] == outputs["off"]
        assert outputs["auto"][1] == records

    @given(batch=batches)
    @settings(max_examples=40, deadline=None)
    def test_bucket_sort_identical(self, batch):
        results = {}
        for mode in ("auto", "off"):
            kernels.set_mode(mode)
            try:
                bucket = Bucket()
                for pair in batch:
                    bucket.addpair(pair)
                bucket.sort()
                results[mode] = (list(bucket._keys), list(bucket._pairs))
            finally:
                kernels.set_mode("auto")
        assert results["auto"] == results["off"]


# ---------------------------------------------------------------------
# Compile layer: CC, cache tag, fallback modes
# ---------------------------------------------------------------------


class TestCompileLayer:
    def test_cc_env_wins(self, monkeypatch, tmp_path):
        fake = tmp_path / "mycc"
        fake.write_text("#!/bin/sh\nexit 0\n")
        fake.chmod(0o755)
        monkeypatch.setenv("CC", f"{fake} -m64")
        compiler = native_compile.find_compiler()
        assert compiler == [str(fake), "-m64"]

    def test_missing_cc_is_unavailable_not_fallback(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler-xyz")
        assert native_compile.find_compiler() is None
        with pytest.raises(CompilerUnavailable, match="CC="):
            native_compile.build_shared_library(
                os.path.join(
                    os.path.dirname(kernels.__file__), "_shuffle.c"
                ),
                "repro_test_cc",
                ["-O2", "-shared", "-fPIC"],
            )

    def test_user_cache_tag_without_getuid(self, monkeypatch):
        monkeypatch.delattr(os, "getuid", raising=False)
        tag = native_compile.user_cache_tag()
        assert tag
        assert all(c.isalnum() or c in "_.-" for c in tag)

    def test_auto_mode_falls_back_silently(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler-xyz")
        kernels.set_mode("auto")
        try:
            assert kernels.get() is None
            assert not kernels.available()
        finally:
            kernels.set_mode("auto")

    def test_on_mode_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler-xyz")
        kernels.set_mode("on")
        try:
            with pytest.raises(CompilerUnavailable):
                kernels.get()
            assert not kernels.available()
        finally:
            kernels.set_mode("auto")

    def test_off_mode_never_compiles(self):
        kernels.set_mode("off")
        try:
            assert kernels.get() is None
            assert os.environ.get("MRS_NATIVE") == "off"
        finally:
            kernels.set_mode("auto")

    def test_pure_fallback_still_shuffles(self, monkeypatch, tmp_path):
        # With a broken compiler and auto mode, the whole write/sort/
        # read pipeline runs pure-Python and stays correct.
        monkeypatch.setenv("CC", "/nonexistent/compiler-xyz")
        kernels.set_mode("auto")
        try:
            assert kernels.get() is None
            bucket = FileBucket(
                str(tmp_path / "b.mrsb"),
                key_serializer="str",
                value_serializer="int",
            )
            for word in ["b", "a", "c", "a"]:
                bucket.addpair((word, 1))
            bucket.open_writer()
            bucket.close_writer()
            assert bucket.readback() == [("b", 1), ("a", 1), ("c", 1), ("a", 1)]
            bucket.sort()
            assert [p[0] for p in bucket.sorted_pairs()] == ["a", "a", "b", "c"]
        finally:
            kernels.set_mode("auto")

    @needs_compiler
    def test_halton_reuses_shared_compile(self):
        from repro.apps.pi import halton_ctypes

        assert halton_ctypes.CompilerUnavailable is CompilerUnavailable
        assert halton_ctypes.is_available()


# ---------------------------------------------------------------------
# Streaming regression: sorted URLs must not be materialized
# ---------------------------------------------------------------------


class TestSortedUrlStreaming:
    def test_sorted_records_from_url_streams(self, tmp_path, monkeypatch):
        """A url_sorted bucket must stream: no list() materialization.

        Read through a counting file wrapper and assert the stream
        yields its first record after a bounded number of reads — a
        materializing implementation would consume the whole file
        before yielding anything.
        """
        from repro.io.bucket import sorted_records_from_url

        path = tmp_path / "big.mrsb"
        pairs = sorted((f"key{i:07d}", i) for i in range(20000))
        _write_sorted_file(str(path), pairs)

        reads = {"n": 0}
        real_open = open

        def counting_open(file, *args, **kwargs):
            f = real_open(file, *args, **kwargs)
            real_read = f.read

            def read(*a):
                reads["n"] += 1
                return real_read(*a)

            f.read = read
            return f

        import builtins

        monkeypatch.setattr(builtins, "open", counting_open)
        stream = sorted_records_from_url(f"file:{path}", True, "str", "int")
        first = next(iter(stream))
        assert first[1] == pairs[0]
        # One magic read + one chunk read (+ maybe one readahead); a
        # materializing path would need the whole multi-MB file first.
        assert reads["n"] <= 4

    def test_unsorted_url_still_sorts(self, tmp_path):
        from repro.io.bucket import sorted_records_from_url

        path = tmp_path / "unsorted.mrsb"
        _write_sorted_file(str(path), [("b", 2), ("a", 1), ("c", 3)][::-1])
        records = list(
            sorted_records_from_url(f"file:{path}", False, "str", "int")
        )
        assert [r[1][0] for r in records] == ["a", "b", "c"]


class TestCheckpointSortedFlags:
    def test_roundtrip_preserves_sorted_flag(self, tmp_path):
        from repro.core.dataset import BaseDataset
        from repro.io import checkpoint

        dataset = BaseDataset(
            splits=1, prefix="t", key_serializer="str", value_serializer="int"
        )
        sorted_bucket = Bucket(source=0, split=0)
        for word in ["a", "b", "c"]:
            sorted_bucket.addpair((word, 1))
        unsorted_bucket = Bucket(source=1, split=0)
        for word in ["z", "y"]:
            unsorted_bucket.addpair((word, 1))
        dataset.add_bucket(sorted_bucket)
        dataset.add_bucket(unsorted_bucket)
        dataset.complete = True
        path = str(tmp_path / "ckpt")
        checkpoint.write_checkpoint(path, dataset)

        loaded = checkpoint.load_checkpoint(path)
        flags = {
            (b.source, b.split): b.url_sorted
            for b in loaded.existing_buckets()
        }
        assert flags[(0, 0)] is True
        assert flags[(1, 0)] is False

    def test_version_1_manifest_still_loads(self, tmp_path):
        import json

        from repro.core.dataset import BaseDataset
        from repro.io import checkpoint

        dataset = BaseDataset(
            splits=1, prefix="t", key_serializer="str", value_serializer="int"
        )
        bucket = Bucket(source=0, split=0)
        bucket.addpair(("a", 1))
        dataset.add_bucket(bucket)
        dataset.complete = True
        path = str(tmp_path / "ckpt")
        checkpoint.write_checkpoint(path, dataset)
        manifest_path = os.path.join(path, checkpoint.MANIFEST)
        with open(manifest_path) as f:
            manifest = json.load(f)
        manifest["version"] = 1
        for entry in manifest["buckets"]:
            entry.pop("sorted", None)
        with open(manifest_path, "w") as f:
            json.dump(manifest, f)

        loaded = checkpoint.load_checkpoint(path)
        (bucket,) = loaded.existing_buckets()
        assert bucket.url_sorted is False  # conservative default
        assert list(bucket) == [("a", 1)]
