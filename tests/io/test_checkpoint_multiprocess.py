"""Checkpoint round-trips for datasets computed by the multiprocess
pool.

Pool-computed buckets are URL-only on the coordinator side (the pairs
live in shared-tmpdir files written by workers), so ``write_checkpoint``
must fetch through the data plane — and the checkpoint must outlive the
backend's tmpdir.
"""

import pytest

from repro.core.job import Job
from repro.core.options import default_options
from repro.io.checkpoint import (
    checkpoint_exists,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.multiprocess import MultiprocessBackend
from repro.runtime.serial import SerialBackend

from tests.runtime.programs_mp import Tally


def make_mp_job(tmp_path, procs=2):
    opts = default_options(procs=procs, tmpdir=str(tmp_path / "mp"))
    program = Tally(opts, [])
    backend = MultiprocessBackend(program, opts, [])
    return Job(backend, program), program, backend


class TestMultiprocessCheckpoint:
    def test_roundtrip_of_pool_computed_dataset(self, tmp_path):
        job, p, backend = make_mp_job(tmp_path)
        path = str(tmp_path / "ckpt")
        try:
            src = job.local_data([(i, i) for i in range(10)], splits=2)
            mapped = job.map_data(src, p.map, splits=2)
            job.wait(mapped, timeout=60)
            expected = sorted(mapped.data())
            write_checkpoint(path, mapped)
        finally:
            backend.close()
        assert checkpoint_exists(path)

        # The pool's tmpdir is gone; the checkpoint must be
        # self-contained.
        program = Tally(default_options(), [])
        job2 = Job(SerialBackend(program), program)
        restored = load_checkpoint(path, job2)
        assert restored.complete
        assert sorted(restored.data()) == expected

    def test_restored_dataset_feeds_a_new_pool(self, tmp_path):
        job, p, backend = make_mp_job(tmp_path)
        path = str(tmp_path / "ckpt")
        try:
            src = job.local_data([(i, i) for i in range(6)], splits=2)
            mapped = job.map_data(src, p.map, splits=2)
            job.wait(mapped, timeout=60)
            write_checkpoint(path, mapped)
        finally:
            backend.close()

        job2, p2, backend2 = make_mp_job(tmp_path / "second")
        try:
            restored = load_checkpoint(path, job2)
            reduced = job2.reduce_data(restored, p2.reduce, splits=1)
            job2.wait(reduced, timeout=60)
            assert sorted(reduced.data()) == [(0, 2), (1, 2), (2, 2)]
        finally:
            backend2.close()
