"""Multi-megabyte single records through the whole shuffle.

A job whose individual values are several MB each exercises every
large-value path at once: the scatter write on emit, the spill files,
the worker fetch, and the streaming merge.  The outputs must be
byte-identical across all local runtimes and across the zero-copy
knob, and the mmap read path must not materialize the whole file to
iterate it (the peak-RSS check runs in a subprocess so the number is
clean).
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro as mrs
from repro.core.main import run_program

#: Rows per emitted block; int64 so summation is exact and therefore
#: order-independent — reduce output is bit-identical no matter which
#: runtime delivered the values first.
BLOCK_ROWS = 130_000  # ~4 MB per record at 4 int64 columns
COLS = 4


class BigBlockSum(mrs.MapReduce):
    """Each map task emits one ~4 MB array; reduce sums per key."""

    def run(self, job):
        source = job.local_data([(i, i) for i in range(6)], splits=3)
        intermediate = job.map_data(
            source, self.map, splits=2,
            key_serializer="int", value_serializer="numpy",
        )
        output = job.reduce_data(
            intermediate, self.reduce, splits=2,
            key_serializer="int", value_serializer="numpy",
        )
        job.wait(output)
        # Snapshot while the backend (and its temp files) is alive.
        self.result_bytes = {
            key: value.tobytes() for key, value in output.data()
        }
        return 0

    def map(self, key, value):
        block = np.arange(
            BLOCK_ROWS * COLS, dtype=np.int64
        ).reshape(BLOCK_ROWS, COLS) * (value + 1)
        yield (value % 2, block)

    def reduce(self, key, values):
        total = np.zeros((BLOCK_ROWS, COLS), dtype=np.int64)
        for value in values:
            total += value
        yield total


def _run(impl, tmp_path, tag, **overrides):
    program = run_program(
        BigBlockSum, [str(tmp_path / tag)], impl=impl, **overrides
    )
    return program.result_bytes


class TestLargeRecordsEndToEnd:
    def test_runtimes_agree_byte_for_byte(self, tmp_path):
        serial = _run("serial", tmp_path, "serial")
        assert set(serial) == {0, 1}
        # Factors 1+3+5 for key 0, 2+4+6 for key 1, of the base block.
        base = np.arange(BLOCK_ROWS * COLS, dtype=np.int64).reshape(
            BLOCK_ROWS, COLS
        )
        assert serial[0] == (base * 9).tobytes()
        assert serial[1] == (base * 12).tobytes()
        mock = _run("mockparallel", tmp_path, "mock")
        multi = _run("multiprocess", tmp_path, "multi", procs=2)
        assert serial == mock == multi

    def test_zero_copy_knob_does_not_change_results(self, tmp_path):
        from repro.io import serializers

        previous = serializers.zero_copy_mode()
        previous_env = os.environ.get("MRS_ZERO_COPY")
        try:
            on = _run("mockparallel", tmp_path, "zc_on", zero_copy="on")
            off = _run("mockparallel", tmp_path, "zc_off", zero_copy="off")
        finally:
            serializers.set_zero_copy_mode(previous)
            if previous_env is None:
                os.environ.pop("MRS_ZERO_COPY", None)
            else:
                os.environ["MRS_ZERO_COPY"] = previous_env
        assert on == off


# The child samples current VmRSS rather than ru_maxrss: the high-water
# mark is inherited across fork from the (possibly large) test runner,
# so it says nothing about what *this* iteration allocated.
RSS_CHILD = textwrap.dedent("""
    import sys
    import numpy as np
    from repro.io.formats import BinReader
    from repro.io.serializers import NumpySerializer, get_serializer

    def vmrss_kb():
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
        raise RuntimeError("no VmRSS line")

    path = sys.argv[1]
    checksum = 0
    peak = vmrss_kb()
    with open(path, "rb") as f:
        reader = BinReader(
            f,
            key_serializer=get_serializer("int"),
            value_serializer=NumpySerializer,
            use_mmap=True,
        )
        for key, value in reader:
            checksum += int(value[0, 0])  # touch one page per record
            peak = max(peak, vmrss_kb())
    print(checksum, peak)
""")


@pytest.mark.integration
@pytest.mark.skipif(
    not os.path.exists("/proc/self/status"), reason="needs /proc"
)
def test_mmap_iteration_peak_rss_stays_flat(tmp_path):
    """Iterating a file much larger than the working set must not pull
    every value into memory: records decode as views over the map, so
    peak RSS tracks the pages actually touched, not the file size."""
    from repro.io.formats import BinWriter
    from repro.io.serializers import NumpySerializer, get_serializer

    path = tmp_path / "big.mrsb"
    n_records, rows = 32, 524_288  # 32 x 4 MB = 128 MB on disk
    with open(path, "wb") as f:
        writer = BinWriter(
            f,
            key_serializer=get_serializer("int"),
            value_serializer=NumpySerializer,
        )
        block = np.arange(rows, dtype=np.int64).reshape(-1, 1)
        for i in range(n_records):
            writer.writepair((i, block + i))
        writer.finish()
    file_size = os.path.getsize(path)
    assert file_size > 100 * 1024 * 1024

    env = dict(os.environ, PYTHONPATH="src", MRS_ZERO_COPY="on")
    out = subprocess.run(
        [sys.executable, "-c", RSS_CHILD, str(path)],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        check=True,
    )
    checksum, peak_kb = out.stdout.split()
    assert int(checksum) == sum(range(n_records))
    # Interpreter + numpy baseline is a few tens of MB; give it slack
    # but stay far below the 128 MB file.
    assert int(peak_kb) * 1024 < file_size * 0.6, (
        f"peak RSS {peak_kb} KB suggests the reader copied values "
        f"instead of mapping them ({file_size} byte file)"
    )
