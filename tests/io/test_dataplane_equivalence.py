"""Data-plane equivalence: the encode-once shuffle must be invisible.

The cached-key-bytes pipeline (emit -> combine -> spill -> streaming
merge) is a pure optimization; these tests pin that down three ways:
byte-identical job output across the local runtimes, byte-identical
``.mrsb`` files against a pre-PR-style reference writer loop, and
sort/group correctness on mixed-type key sets.
"""

import enum
import itertools
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.wordcount import WordCountCombined
from repro.core.main import run_program
from repro.io import formats
from repro.io.bucket import Bucket, FileBucket, group_sorted_records
from repro.io.serializers import get_serializer
from repro.util.hashing import key_to_bytes


def all_output_files(directory):
    """Every output file (hidden ``.mrsb`` sidecars included) keyed by
    its ``source_split.ext`` suffix — the dataset-id prefix differs
    between runs."""
    out = {}
    for name in sorted(os.listdir(directory)):
        stem, ext = os.path.splitext(name)
        key = ("_".join(stem.split("_")[-2:]), ext, name.startswith("."))
        with open(os.path.join(directory, name), "rb") as f:
            out[key] = f.read()
    return out


class MrsbWordCount(WordCountCombined):
    """WordCount writing lossless ``.mrsb`` output, so runtime
    equivalence can be asserted on the binary format itself."""

    output_format = "mrsb"


class TestRuntimeByteIdentity:
    def test_outputs_and_task_counts_agree(self, tmp_path):
        input_file = tmp_path / "in.txt"
        input_file.write_text(
            "the quick brown fox jumps over the lazy dog\n"
            "the dog sleeps while the fox runs\n" * 8
        )
        files = {}
        task_counts = {}
        for impl in ("serial", "mockparallel", "multiprocess"):
            outdir = tmp_path / impl
            overrides = {"reduce_tasks": 2}
            if impl == "multiprocess":
                overrides["procs"] = 2
            program = run_program(
                MrsbWordCount,
                [str(input_file), str(outdir)],
                impl=impl,
                **overrides,
            )
            files[impl] = all_output_files(outdir)
            task_counts[impl] = program.metrics_report["summary"]["task_count"]
        assert files["serial"], "serial run produced no output"
        assert any(
            key[1] == ".mrsb" for key in files["serial"]
        ), "no lossless .mrsb output to compare"
        assert files["mockparallel"] == files["serial"]
        assert files["multiprocess"] == files["serial"]
        assert (
            task_counts["serial"]
            == task_counts["mockparallel"]
            == task_counts["multiprocess"]
        )


SORTED_PAIRS = sorted(
    [("apple", 3), ("banana", 1), ("cherry", 2), ("apple", 9), ("date", 4)],
    key=lambda pair: key_to_bytes(pair[0]),
)


def reference_mrsb(path, pairs, key_serializer, value_serializer):
    """The pre-PR write loop: one ``writepair`` per pair, no cached key
    bytes anywhere."""
    with open(path, "wb") as f:
        writer = formats.BinWriter(
            f,
            key_serializer=get_serializer(key_serializer),
            value_serializer=get_serializer(value_serializer),
        )
        for pair in pairs:
            writer.writepair(pair)
        writer.finish()
    with open(path, "rb") as f:
        return f.read()


class TestReferenceWriterIdentity:
    @pytest.mark.parametrize(
        "key_serializer,value_serializer",
        [("str", "int"), (None, None), ("pickle", "pickle")],
    )
    def test_spill_bytes_match_pre_pr_writer(
        self, tmp_path, key_serializer, value_serializer
    ):
        """The buffered batch spill (cached-key slicing and all) writes
        the exact bytes the pre-PR per-pair loop wrote."""
        expected = reference_mrsb(
            str(tmp_path / "reference.mrsb"),
            SORTED_PAIRS,
            key_serializer,
            value_serializer,
        )
        path = str(tmp_path / "bucket.mrsb")
        bucket = FileBucket(
            path,
            key_serializer=key_serializer,
            value_serializer=value_serializer,
            retain=False,
        )
        for pair in SORTED_PAIRS:
            bucket.addpair(pair)
        bucket.close_writer()
        with open(path, "rb") as f:
            assert f.read() == expected

    def test_absorb_path_matches_pre_pr_writer(self, tmp_path):
        """The bulk ``absorb`` spill (batched or direct-streamed) is
        also byte-identical to the reference loop."""
        expected = reference_mrsb(
            str(tmp_path / "reference.mrsb"), SORTED_PAIRS, "str", "int"
        )
        staged = Bucket()
        for pair in SORTED_PAIRS:
            staged.addpair(pair)
        for buffer_pairs in (2, 1000):  # direct-stream and buffered
            path = str(tmp_path / f"absorb_{buffer_pairs}.mrsb")
            out = FileBucket(
                path,
                key_serializer="str",
                value_serializer="int",
                retain=False,
                spill_buffer_pairs=buffer_pairs,
            )
            out.absorb(staged)
            out.close_writer()
            with open(path, "rb") as f:
                assert f.read() == expected


class Color(enum.IntEnum):
    RED = 1
    GREEN = 2
    BLUE = 3


MIXED_KEYS = st.one_of(
    st.integers(),
    st.booleans(),
    st.text(max_size=8),
    st.sampled_from(list(Color)),
    st.tuples(st.integers(), st.text(max_size=4)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(MIXED_KEYS, st.integers()), max_size=80))
def test_mixed_type_sort_and_group(pairs):
    """Sorting and grouping run on canonical key bytes, so key sets
    mixing int/str/tuple/bool/IntEnum stay well-defined: the order is
    the stable byte order and every pair lands in exactly one group."""
    bucket = Bucket()
    for pair in pairs:
        bucket.addpair(pair)
    bucket.sort()
    expected = sorted(pairs, key=lambda pair: key_to_bytes(pair[0]))
    assert list(bucket) == expected

    grouped = [
        (keybytes, key, list(values))
        for keybytes, key, values in group_sorted_records(
            bucket.sorted_records()
        )
    ]
    assert sum(len(values) for _, _, values in grouped) == len(pairs)
    for keybytes, key, _ in grouped:
        assert keybytes == key_to_bytes(key)
    group_keys = [keybytes for keybytes, _, _ in grouped]
    assert group_keys == sorted(group_keys)
    assert len(group_keys) == len(set(group_keys))

    # Hash grouping (the combiner's grouping) partitions the same pairs
    # into the same groups, just in first-encounter order.
    hashed = {
        keybytes: (key, values)
        for keybytes, key, values in bucket.hash_grouped_records()
    }
    assert set(hashed) == set(group_keys)
    for keybytes, key, values in grouped:
        assert hashed[keybytes][0] == key
        assert sorted(map(repr, hashed[keybytes][1])) == sorted(
            map(repr, values)
        )


def test_bool_and_int_keys_do_not_collide():
    """``True`` and ``1`` are distinct keys on the canonical data plane
    even though they compare equal as Python ints."""
    bucket = Bucket()
    bucket.addpair((True, "bool"))
    bucket.addpair((1, "int"))
    bucket.addpair((Color.RED, "enum"))
    groups = list(group_sorted_records(bucket.sorted_records()))
    assert len(groups) == 3
