"""Partition function contracts: range, determinism, coverage."""

import pytest
from hypothesis import given, strategies as st

from repro.io.partition import first_byte_partition, hash_partition, mod_partition


class TestHashPartition:
    def test_single_split_always_zero(self):
        assert hash_partition("anything", 1) == 0

    def test_rejects_zero_splits(self):
        with pytest.raises(ValueError):
            hash_partition("k", 0)

    def test_rejects_negative_splits(self):
        with pytest.raises(ValueError):
            hash_partition("k", -3)

    def test_covers_all_splits_eventually(self):
        n = 8
        hit = {hash_partition(f"key{i}", n) for i in range(500)}
        assert hit == set(range(n))

    def test_balanced_ish(self):
        n = 4
        counts = [0] * n
        for i in range(4000):
            counts[hash_partition(i, n)] += 1
        assert min(counts) > 700  # each split gets a fair share


class TestModPartition:
    def test_identity_for_small_ints(self):
        assert mod_partition(3, 10) == 3

    def test_wraps(self):
        assert mod_partition(13, 10) == 3

    def test_string_digits(self):
        assert mod_partition("7", 5) == 2

    def test_rejects_zero_splits(self):
        with pytest.raises(ValueError):
            mod_partition(1, 0)


class TestFirstBytePartition:
    def test_ascii_ordering_is_monotone(self):
        n = 4
        splits = [first_byte_partition(w, n) for w in ["apple", "mango", "zebra"]]
        assert splits == sorted(splits)

    def test_empty_key(self):
        assert first_byte_partition("", 4) == 0

    def test_bytes_key(self):
        assert 0 <= first_byte_partition(b"\xff", 4) < 4

    def test_non_string_key_coerced(self):
        assert 0 <= first_byte_partition(123, 4) < 4

    def test_rejects_zero_splits(self):
        with pytest.raises(ValueError):
            first_byte_partition("a", 0)


@given(
    st.one_of(st.text(), st.integers(), st.binary()),
    st.integers(min_value=1, max_value=64),
)
def test_hash_partition_in_range(key, n):
    assert 0 <= hash_partition(key, n) < n


@given(st.one_of(st.text(), st.integers()), st.integers(min_value=1, max_value=64))
def test_hash_partition_deterministic(key, n):
    assert hash_partition(key, n) == hash_partition(key, n)


@given(st.text(), st.integers(min_value=1, max_value=64))
def test_first_byte_partition_in_range(key, n):
    assert 0 <= first_byte_partition(key, n) < n


@given(st.integers(), st.integers(min_value=1, max_value=64))
def test_mod_partition_in_range(key, n):
    assert 0 <= mod_partition(key, n) < n
