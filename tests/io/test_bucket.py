"""Bucket invariants: sort/group, merge, file backing, sidecars."""

import os

import pytest
from hypothesis import given, strategies as st

from repro.io.bucket import (
    Bucket,
    FileBucket,
    SidecarFileBucket,
    group_sorted,
    merge_sorted_buckets,
    sort_key,
)


def make_bucket(pairs, **kw):
    bucket = Bucket(**kw)
    bucket.collect(pairs)
    return bucket


class TestBucket:
    def test_collect_and_len(self):
        bucket = make_bucket([("a", 1), ("b", 2)])
        assert len(bucket) == 2
        assert bucket[0] == ("a", 1)

    def test_sort_orders_by_canonical_key(self):
        bucket = make_bucket([("b", 1), ("a", 2), ("b", 0)])
        assert bucket.sorted_pairs() == [("a", 2), ("b", 1), ("b", 0)]

    def test_sort_is_stable_for_equal_keys(self):
        bucket = make_bucket([("k", i) for i in range(10)])
        assert [v for _, v in bucket.sorted_pairs()] == list(range(10))

    def test_already_sorted_detection(self):
        bucket = make_bucket([("a", 1), ("b", 2), ("c", 3)])
        assert bucket.is_sorted
        bucket.addpair(("a", 9))
        assert not bucket.is_sorted

    def test_mixed_type_keys_sortable(self):
        """int and str keys cannot be compared directly in Python 3;
        the canonical byte encoding makes grouping well-defined."""
        bucket = make_bucket([(1, "x"), ("a", "y"), (2, "z")])
        assert len(bucket.sorted_pairs()) == 3

    def test_grouped(self):
        bucket = make_bucket([("b", 1), ("a", 2), ("b", 3)])
        groups = [(k, list(vs)) for k, vs in bucket.grouped()]
        assert groups == [("a", [2]), ("b", [1, 3])]

    def test_clean_drops_pairs_keeps_url(self):
        bucket = make_bucket([("a", 1)], url="file:/nope")
        bucket.clean()
        assert len(bucket) == 0
        assert bucket.url == "file:/nope"


class TestGroupSorted:
    def test_empty(self):
        assert list(group_sorted([])) == []

    def test_values_are_lazy_iterators(self):
        pairs = sorted([("a", 1), ("a", 2), ("b", 3)], key=sort_key)
        for key, values in group_sorted(pairs):
            first = next(values)
            assert first in (1, 3)
            break  # abandoning the group iterator must not blow up

    def test_single_key(self):
        groups = [(k, list(v)) for k, v in group_sorted([("x", i) for i in range(5)])]
        assert groups == [("x", [0, 1, 2, 3, 4])]


class TestMergeSorted:
    def test_merge_two_buckets(self):
        b1 = make_bucket([("a", 1), ("c", 3)])
        b2 = make_bucket([("b", 2), ("d", 4)])
        merged = [k for k, _ in merge_sorted_buckets([b1, b2])]
        assert merged == ["a", "b", "c", "d"]

    def test_merge_preserves_source_order_for_ties(self):
        b1 = make_bucket([("k", "first")], source=0)
        b2 = make_bucket([("k", "second")], source=1)
        values = [v for _, v in merge_sorted_buckets([b1, b2])]
        assert values == ["first", "second"]

    def test_merge_empty(self):
        assert list(merge_sorted_buckets([])) == []


class TestFileBucket:
    def test_write_and_readback(self, tmp_path):
        path = str(tmp_path / "bucket.mrsb")
        bucket = FileBucket(path, source=1, split=2)
        bucket.addpair(("word", 3))
        bucket.addpair((5, [1, 2]))
        bucket.close_writer()
        assert bucket.readback() == [("word", 3), (5, [1, 2])]
        assert bucket.url == "file:" + path

    def test_empty_file_created_on_open(self, tmp_path):
        path = str(tmp_path / "empty.mrsb")
        bucket = FileBucket(path)
        bucket.open_writer()
        bucket.close_writer()
        assert os.path.exists(path)
        assert bucket.readback() == []

    def test_text_format_selected_by_extension(self, tmp_path):
        path = str(tmp_path / "out.txt")
        bucket = FileBucket(path)
        bucket.addpair(("hello", 2))
        bucket.close_writer()
        assert open(path).read() == "hello\t2\n"


class TestSidecarFileBucket:
    def test_user_file_and_sidecar_both_written(self, tmp_path):
        path = str(tmp_path / "out" / "result.txt")
        bucket = SidecarFileBucket(path, source=0, split=1)
        bucket.addpair(("word", 7))
        bucket.close_writer()
        assert open(path).read() == "word\t7\n"
        assert bucket.readback() == [("word", 7)]  # lossless sidecar
        assert bucket.url.endswith(".mrsb")

    def test_empty_sidecar(self, tmp_path):
        path = str(tmp_path / "empty.txt")
        bucket = SidecarFileBucket(path)
        bucket.open_writer()
        bucket.close_writer()
        assert os.path.exists(path)
        assert bucket.readback() == []


@given(
    st.lists(
        st.tuples(st.one_of(st.text(), st.integers()), st.integers()),
        max_size=60,
    )
)
def test_grouping_partitions_all_pairs(pairs):
    """Every pair lands in exactly one group; groups have distinct keys."""
    bucket = make_bucket(pairs)
    total = 0
    seen_keys = []
    for key, values in bucket.grouped():
        count = len(list(values))
        assert count >= 1
        total += count
        seen_keys.append(sort_key((key, None)))
    assert total == len(pairs)
    assert seen_keys == sorted(seen_keys)
    assert len(seen_keys) == len(set(seen_keys))
