"""Bucket invariants: sort/group, merge, file backing, sidecars."""

import os

import pytest
from hypothesis import given, strategies as st

from repro.io.bucket import (
    Bucket,
    FileBucket,
    SidecarFileBucket,
    group_sorted,
    merge_sorted_buckets,
    sort_key,
)
from repro.util.hashing import key_to_bytes


def make_bucket(pairs, **kw):
    bucket = Bucket(**kw)
    bucket.collect(pairs)
    return bucket


class TestBucket:
    def test_collect_and_len(self):
        bucket = make_bucket([("a", 1), ("b", 2)])
        assert len(bucket) == 2
        assert bucket[0] == ("a", 1)

    def test_sort_orders_by_canonical_key(self):
        bucket = make_bucket([("b", 1), ("a", 2), ("b", 0)])
        assert bucket.sorted_pairs() == [("a", 2), ("b", 1), ("b", 0)]

    def test_sort_is_stable_for_equal_keys(self):
        bucket = make_bucket([("k", i) for i in range(10)])
        assert [v for _, v in bucket.sorted_pairs()] == list(range(10))

    def test_already_sorted_detection(self):
        bucket = make_bucket([("a", 1), ("b", 2), ("c", 3)])
        assert bucket.is_sorted
        bucket.addpair(("a", 9))
        assert not bucket.is_sorted

    def test_mixed_type_keys_sortable(self):
        """int and str keys cannot be compared directly in Python 3;
        the canonical byte encoding makes grouping well-defined."""
        bucket = make_bucket([(1, "x"), ("a", "y"), (2, "z")])
        assert len(bucket.sorted_pairs()) == 3

    def test_grouped(self):
        bucket = make_bucket([("b", 1), ("a", 2), ("b", 3)])
        groups = [(k, list(vs)) for k, vs in bucket.grouped()]
        assert groups == [("a", [2]), ("b", [1, 3])]

    def test_clean_drops_pairs_keeps_url(self):
        bucket = make_bucket([("a", 1)], url="file:/nope")
        bucket.clean()
        assert len(bucket) == 0
        assert bucket.url == "file:/nope"


class TestLazySortedness:
    def test_empty_bucket_is_sorted(self):
        assert Bucket().is_sorted

    def test_appends_defer_the_check(self):
        """addpair does no comparisons; the flag is tri-state and only
        resolved (then cached) when ``is_sorted`` is read."""
        bucket = make_bucket([("a", 1), ("b", 2), ("c", 3)])
        assert bucket._sorted is None
        assert bucket.is_sorted
        assert bucket._sorted is True

    def test_out_of_order_appends_resolve_false(self):
        bucket = make_bucket([("b", 1), ("a", 2)])
        assert bucket._sorted is None
        assert not bucket.is_sorted
        assert bucket._sorted is False

    def test_sort_restores_the_flag(self):
        bucket = make_bucket([("b", 1), ("a", 2)])
        bucket.sort()
        assert bucket.is_sorted
        assert list(bucket) == [("a", 2), ("b", 1)]

    def test_collector_appends_in_lockstep(self):
        bucket = Bucket()
        add_key, add_pair = bucket.collector()
        for pair in [("a", 1), ("b", 2)]:
            add_key(key_to_bytes(pair[0]))
            add_pair(pair)
        assert list(bucket) == [("a", 1), ("b", 2)]
        assert bucket.is_sorted
        assert bucket.sorted_pairs() == [("a", 1), ("b", 2)]

    def test_collector_marks_sort_state_unknown(self):
        bucket = make_bucket([("a", 1), ("b", 2)])
        assert bucket.is_sorted
        add_key, add_pair = bucket.collector()
        add_key(key_to_bytes("a"))
        add_pair(("a", 3))
        assert not bucket.is_sorted

    def test_extend_records_matches_addpair_loop(self):
        pairs = [("b", 1), ("a", 2), ("c", 3)]
        records = [(key_to_bytes(k), (k, v)) for k, v in pairs]
        bulk = Bucket()
        bulk.extend_records(records)
        loop = make_bucket(pairs)
        assert list(bulk) == list(loop)
        assert bulk.sorted_pairs() == loop.sorted_pairs()


class TestHashGroupedRecords:
    def test_empty(self):
        assert Bucket().hash_grouped_records() == []

    def test_groups_in_first_encounter_order(self):
        bucket = make_bucket([("b", 1), ("a", 2), ("b", 3)])
        groups = bucket.hash_grouped_records()
        assert groups == [
            (key_to_bytes("b"), "b", [1, 3]),
            (key_to_bytes("a"), "a", [2]),
        ]

    def test_partitions_same_groups_as_sorted_grouping(self):
        pairs = [("b", 1), (1, "x"), ("a", 2), ("b", 3), (1, "y")]
        bucket = make_bucket(pairs)
        hashed = {kb: values for kb, _, values in bucket.hash_grouped_records()}
        by_sort = {
            key_to_bytes(key): list(values) for key, values in bucket.grouped()
        }
        assert hashed == by_sort


class TestGroupSorted:
    def test_empty(self):
        assert list(group_sorted([])) == []

    def test_values_are_lazy_iterators(self):
        pairs = sorted([("a", 1), ("a", 2), ("b", 3)], key=sort_key)
        for key, values in group_sorted(pairs):
            first = next(values)
            assert first in (1, 3)
            break  # abandoning the group iterator must not blow up

    def test_single_key(self):
        groups = [(k, list(v)) for k, v in group_sorted([("x", i) for i in range(5)])]
        assert groups == [("x", [0, 1, 2, 3, 4])]


class TestMergeSorted:
    def test_merge_two_buckets(self):
        b1 = make_bucket([("a", 1), ("c", 3)])
        b2 = make_bucket([("b", 2), ("d", 4)])
        merged = [k for k, _ in merge_sorted_buckets([b1, b2])]
        assert merged == ["a", "b", "c", "d"]

    def test_merge_preserves_source_order_for_ties(self):
        b1 = make_bucket([("k", "first")], source=0)
        b2 = make_bucket([("k", "second")], source=1)
        values = [v for _, v in merge_sorted_buckets([b1, b2])]
        assert values == ["first", "second"]

    def test_merge_empty(self):
        assert list(merge_sorted_buckets([])) == []


class TestFileBucket:
    def test_write_and_readback(self, tmp_path):
        path = str(tmp_path / "bucket.mrsb")
        bucket = FileBucket(path, source=1, split=2)
        bucket.addpair(("word", 3))
        bucket.addpair((5, [1, 2]))
        bucket.close_writer()
        assert bucket.readback() == [("word", 3), (5, [1, 2])]
        assert bucket.url == "file:" + path

    def test_empty_file_created_on_open(self, tmp_path):
        path = str(tmp_path / "empty.mrsb")
        bucket = FileBucket(path)
        bucket.open_writer()
        bucket.close_writer()
        assert os.path.exists(path)
        assert bucket.readback() == []

    def test_text_format_selected_by_extension(self, tmp_path):
        path = str(tmp_path / "out.txt")
        bucket = FileBucket(path)
        bucket.addpair(("hello", 2))
        bucket.close_writer()
        assert open(path).read() == "hello\t2\n"


class TestFileBucketSpill:
    def test_url_sorted_tracks_insertion_order(self, tmp_path):
        sorted_bucket = FileBucket(str(tmp_path / "sorted.mrsb"))
        for pair in [("a", 1), ("b", 2)]:
            sorted_bucket.addpair(pair)
        sorted_bucket.close_writer()
        assert sorted_bucket.url_sorted

        unsorted_bucket = FileBucket(str(tmp_path / "unsorted.mrsb"))
        for pair in [("b", 1), ("a", 2)]:
            unsorted_bucket.addpair(pair)
        unsorted_bucket.close_writer()
        assert not unsorted_bucket.url_sorted

    def test_retain_false_keeps_no_pairs_in_memory(self, tmp_path):
        bucket = FileBucket(str(tmp_path / "spill.mrsb"), retain=False)
        bucket.addpair(("a", 1))
        bucket.close_writer()
        assert len(bucket) == 0
        assert bucket.readback() == [("a", 1)]

    def test_flush_threshold_writes_before_close(self, tmp_path):
        path = str(tmp_path / "thresh.mrsb")
        bucket = FileBucket(path, retain=False, spill_buffer_pairs=2)
        bucket.addpair(("a", 1))
        bucket.addpair(("b", 2))  # hits the threshold, batch hits disk
        bucket.flush()
        size_after_two = os.path.getsize(path)
        assert size_after_two > 0
        bucket.addpair(("c", 3))
        bucket.close_writer()
        assert os.path.getsize(path) > size_after_two
        assert bucket.readback() == [("a", 1), ("b", 2), ("c", 3)]

    def test_collector_still_tracks_spill_order(self, tmp_path):
        bucket = FileBucket(str(tmp_path / "collected.mrsb"))
        add_key, add_pair = bucket.collector()
        for pair in [("b", 1), ("a", 2)]:
            add_key(key_to_bytes(pair[0]))
            add_pair(pair)
        bucket.close_writer()
        assert not bucket.url_sorted
        assert bucket.readback() == [("b", 1), ("a", 2)]

    def test_extend_records_scans_batch_order(self, tmp_path):
        in_order = [(key_to_bytes(k), (k, v)) for k, v in [("a", 1), ("b", 2)]]
        bucket = FileBucket(str(tmp_path / "batch.mrsb"))
        bucket.extend_records(in_order)
        bucket.close_writer()
        assert bucket.url_sorted

        shuffled = [(key_to_bytes(k), (k, v)) for k, v in [("b", 1), ("a", 2)]]
        other = FileBucket(str(tmp_path / "batch2.mrsb"))
        other.extend_records(shuffled)
        other.close_writer()
        assert not other.url_sorted

    def test_extend_records_checks_batch_boundary(self, tmp_path):
        """A sorted batch that starts before the previous batch's last
        key makes the stream unsorted."""
        bucket = FileBucket(str(tmp_path / "boundary.mrsb"))
        bucket.extend_records([(key_to_bytes("m"), ("m", 1))])
        bucket.extend_records([(key_to_bytes("a"), ("a", 2))])
        bucket.close_writer()
        assert not bucket.url_sorted

    def test_absorb_marks_unsorted_other_unsorted(self, tmp_path):
        staged = make_bucket([("b", 1), ("a", 2)])
        bucket = FileBucket(str(tmp_path / "absorbed.mrsb"), retain=False)
        bucket.absorb(staged)
        bucket.close_writer()
        assert not bucket.url_sorted
        assert bucket.readback() == [("b", 1), ("a", 2)]


class TestSidecarFileBucket:
    def test_user_file_and_sidecar_both_written(self, tmp_path):
        path = str(tmp_path / "out" / "result.txt")
        bucket = SidecarFileBucket(path, source=0, split=1)
        bucket.addpair(("word", 7))
        bucket.close_writer()
        assert open(path).read() == "word\t7\n"
        assert bucket.readback() == [("word", 7)]  # lossless sidecar
        assert bucket.url.endswith(".mrsb")

    def test_empty_sidecar(self, tmp_path):
        path = str(tmp_path / "empty.txt")
        bucket = SidecarFileBucket(path)
        bucket.open_writer()
        bucket.close_writer()
        assert os.path.exists(path)
        assert bucket.readback() == []


@given(
    st.lists(
        st.tuples(st.one_of(st.text(), st.integers()), st.integers()),
        max_size=60,
    )
)
def test_grouping_partitions_all_pairs(pairs):
    """Every pair lands in exactly one group; groups have distinct keys."""
    bucket = make_bucket(pairs)
    total = 0
    seen_keys = []
    for key, values in bucket.grouped():
        count = len(list(values))
        assert count >= 1
        total += count
        seen_keys.append(sort_key((key, None)))
    assert total == len(pairs)
    assert seen_keys == sorted(seen_keys)
    assert len(seen_keys) == len(set(seen_keys))
