"""Serializer registry and codec round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.io.serializers import (
    FloatSerializer,
    IntSerializer,
    PickleSerializer,
    RawSerializer,
    Serializer,
    StrSerializer,
    get_serializer,
    register_serializer,
)


class TestRegistry:
    def test_none_means_pickle(self):
        assert get_serializer(None) is PickleSerializer

    def test_lookup_by_name(self):
        assert get_serializer("str") is StrSerializer
        assert get_serializer("int") is IntSerializer
        assert get_serializer("raw") is RawSerializer

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="pickle"):
            get_serializer("nope")

    def test_custom_registration(self):
        upper = register_serializer(
            Serializer(
                "upper-test",
                lambda s: s.upper().encode(),
                lambda b: b.decode().lower(),
            )
        )
        assert get_serializer("upper-test") is upper
        assert upper.roundtrip("abc") == "abc"


class TestTypedSerializers:
    def test_raw_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            RawSerializer.dumps("not bytes")

    def test_str_rejects_bytes(self):
        with pytest.raises(TypeError):
            StrSerializer.dumps(b"bytes")

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError):
            IntSerializer.dumps(True)

    def test_int_rejects_float(self):
        with pytest.raises(TypeError):
            IntSerializer.dumps(1.5)

    def test_int_big_values(self):
        big = 2**100
        assert IntSerializer.roundtrip(big) == big
        assert IntSerializer.roundtrip(-big) == -big

    def test_int_malformed_raises(self):
        with pytest.raises(ValueError):
            IntSerializer.loads(b"xyz")

    def test_pickle_handles_nested_structures(self):
        value = {"a": [1, (2, 3)], "b": {"c": None}}
        assert PickleSerializer.roundtrip(value) == value


@given(st.binary())
def test_raw_roundtrip(data):
    assert RawSerializer.roundtrip(data) == data


@given(st.text())
def test_str_roundtrip(text):
    assert StrSerializer.roundtrip(text) == text


@given(st.integers())
def test_int_roundtrip(value):
    assert IntSerializer.roundtrip(value) == value


@given(st.floats(allow_nan=False))
def test_float_roundtrip(value):
    assert FloatSerializer.roundtrip(value) == value


@given(
    st.recursive(
        st.one_of(st.none(), st.integers(), st.text(), st.booleans()),
        lambda children: st.one_of(
            st.lists(children), st.tuples(children, children)
        ),
        max_leaves=10,
    )
)
def test_pickle_roundtrip(value):
    assert PickleSerializer.roundtrip(value) == value
