"""Dataset checkpoint/restore."""

import json
import os

import numpy as np
import pytest

from repro.core.job import Job
from repro.core.options import default_options
from repro.core.program import MapReduce
from repro.io.checkpoint import (
    CheckpointError,
    checkpoint_exists,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.serial import SerialBackend


class Doubler(MapReduce):
    def map(self, key, value):
        yield (key, value * 2)

    def reduce(self, key, values):
        yield sum(values)


def make_job():
    program = Doubler(default_options(), [])
    return Job(SerialBackend(program), program), program


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        job, program = make_job()
        source = job.local_data([(i, i) for i in range(10)], splits=3)
        mapped = job.map_data(source, program.map, splits=2)
        job.wait(mapped)
        path = str(tmp_path / "ckpt")
        write_checkpoint(path, mapped)
        assert checkpoint_exists(path)

        job2, program2 = make_job()
        restored = load_checkpoint(path, job2)
        assert sorted(restored.data()) == sorted(mapped.data())
        assert restored.splits == mapped.splits
        assert restored.complete

    def test_restored_dataset_is_consumable(self, tmp_path):
        job, program = make_job()
        source = job.local_data([(i, 1) for i in range(6)], splits=2)
        mapped = job.map_data(source, program.map, splits=2)
        job.wait(mapped)
        path = str(tmp_path / "ckpt")
        write_checkpoint(path, mapped)

        job2, program2 = make_job()
        restored = load_checkpoint(path, job2)
        reduced = job2.reduce_data(restored, program2.reduce, splits=1)
        job2.wait(reduced)
        assert sorted(reduced.data()) == [(i, 2) for i in range(6)]

    def test_numpy_payloads_roundtrip(self, tmp_path):
        job, program = make_job()
        arrays = [(i, np.arange(4) * i) for i in range(4)]
        source = job.local_data(arrays, splits=2)
        path = str(tmp_path / "ckpt")
        write_checkpoint(path, source)
        restored = load_checkpoint(path)
        for (k1, v1), (k2, v2) in zip(sorted(source.data()),
                                      sorted(restored.data())):
            assert k1 == k2
            assert np.array_equal(v1, v2)

    def test_overwrite_keeps_previous_as_old(self, tmp_path):
        job, program = make_job()
        first = job.local_data([(0, "v1")])
        second = job.local_data([(0, "v2")])
        path = str(tmp_path / "ckpt")
        write_checkpoint(path, first)
        write_checkpoint(path, second)
        assert load_checkpoint(path).data() == [(0, "v2")]
        assert os.path.isdir(path + ".old")

    def test_incomplete_dataset_rejected(self, tmp_path):
        job, program = make_job()
        source = job.local_data([(0, 0)])
        mapped = job.map_data(source, program.map)  # queued, not run
        with pytest.raises(CheckpointError, match="incomplete"):
            write_checkpoint(str(tmp_path / "c"), mapped)


class TestFailureModes:
    def test_missing_checkpoint(self, tmp_path):
        assert not checkpoint_exists(str(tmp_path / "nope"))
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "nope"))

    def test_corrupt_manifest(self, tmp_path):
        path = tmp_path / "ckpt"
        path.mkdir()
        (path / "manifest.json").write_text("{ not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(str(path))

    def test_version_skew(self, tmp_path):
        path = tmp_path / "ckpt"
        path.mkdir()
        (path / "manifest.json").write_text(
            json.dumps({"version": 999, "splits": 1, "buckets": []})
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_missing_bucket_file(self, tmp_path):
        job, program = make_job()
        source = job.local_data([(0, 1)])
        path = str(tmp_path / "ckpt")
        write_checkpoint(path, source)
        manifest = json.load(open(os.path.join(path, "manifest.json")))
        os.unlink(os.path.join(path, manifest["buckets"][0]["file"]))
        with pytest.raises(CheckpointError, match="missing"):
            load_checkpoint(path)


class TestIterativeResume:
    def test_resume_mid_loop_matches_straight_run(self, tmp_path):
        """Checkpoint after iteration 2 of 5, reload in a fresh job,
        finish — identical final data to an uninterrupted run."""
        def iterate(job, program, dataset, iterations):
            for _ in range(iterations):
                dataset = job.map_data(dataset, program.map, splits=2)
            job.wait(dataset)
            return dataset

        job, program = make_job()
        start = job.local_data([(i, 1) for i in range(4)], splits=2)
        straight = iterate(job, program, start, 5)

        job_a, program_a = make_job()
        start_a = job_a.local_data([(i, 1) for i in range(4)], splits=2)
        half = iterate(job_a, program_a, start_a, 2)
        path = str(tmp_path / "ckpt")
        write_checkpoint(path, half)

        job_b, program_b = make_job()
        restored = load_checkpoint(path, job_b)
        finished = iterate(job_b, program_b, restored, 3)
        assert sorted(finished.data()) == sorted(straight.data())
