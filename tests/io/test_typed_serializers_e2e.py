"""Typed per-dataset serializers, end to end.

A real Mrs feature: datasets can declare registered serializer names
(``str``, ``int``, ...) so hot paths skip pickle.  The names travel in
task descriptors, so every runtime — including subprocess slaves —
must encode/decode identically.
"""

import io
import zipfile

import pytest

from repro.apps.wordcount import WordCount, count_words_serially
from repro.core.main import run_program
from repro.core.options import default_options
from repro.core.job import Job
from repro.core.program import MapReduce
from repro.io.formats import ZipReader, reader_for
from repro.runtime.mockparallel import MockParallelBackend
from repro.runtime.serial import SerialBackend


class TypedWordCount(MapReduce):
    """WordCount declaring str keys / int values for its datasets."""

    def map(self, key, value):
        for word in value.split():
            yield (word, 1)

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        source = self.input_data(job)
        intermediate = job.map_data(
            source, self.map, splits=2,
            key_serializer="str", value_serializer="int",
        )
        output = job.reduce_data(
            intermediate, self.reduce, splits=2,
            key_serializer="str", value_serializer="int",
        )
        job.wait(output)
        self.output_data = output
        return 0


class TestTypedSerializersEndToEnd:
    @pytest.mark.parametrize("impl", ["serial", "mockparallel"])
    def test_matches_untyped(self, impl, text_file, tmp_path):
        typed = run_program(
            TypedWordCount, [text_file, str(tmp_path / "t")], impl=impl
        )
        expected = count_words_serially(open(text_file).read().splitlines())
        assert dict(typed.output_data.iterdata()) == expected

    def test_mockparallel_exercises_binary_codec(self, text_file, tmp_path):
        """The mock-parallel run forces every record through the typed
        binary format on disk, so a codec mismatch would corrupt or
        crash — passing means the wiring is complete."""
        prog = run_program(
            TypedWordCount, [text_file, str(tmp_path / "o")],
            impl="mockparallel",
        )
        counts = dict(prog.output_data.iterdata())
        assert all(isinstance(k, str) for k in counts)
        assert all(isinstance(v, int) for v in counts.values())

    def test_wrong_typed_value_fails_loudly(self, text_file, tmp_path):
        class BadTypes(TypedWordCount):
            def map(self, key, value):
                yield ("word", "not-an-int")  # violates the int codec

        program = BadTypes(default_options(), [text_file, str(tmp_path / "x")])
        job = Job(MockParallelBackend(program), program)
        from repro.core.job import JobError

        with pytest.raises(JobError):
            program.run(job)

    def test_serializer_names_survive_descriptor(self):
        from repro.comm import protocol

        descriptor = protocol.make_task_descriptor(
            "d", 0, {"kind": "map", "splits": 1, "parter_name": "p",
                     "map_name": "m", "combine_name": None},
            [], None, "mrsb",
            key_serializer="str", value_serializer="int",
            input_key_serializer="str", input_value_serializer="int",
        )
        protocol.check_task_descriptor(descriptor)
        assert descriptor["key_serializer"] == "str"
        assert descriptor["input_value_serializer"] == "int"


class TestZipReader:
    def make_zip(self, members):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            for name, text in members.items():
                archive.writestr(name, text)
        buffer.seek(0)
        return buffer

    def test_registered_for_zip_extension(self):
        assert reader_for("book.zip") is ZipReader

    def test_reads_members_as_lines(self):
        buffer = self.make_zip({"a.txt": "one\ntwo\n", "b.txt": "three\n"})
        pairs = list(ZipReader(buffer))
        assert (("a.txt", 0), "one") in pairs
        assert (("a.txt", 1), "two") in pairs
        assert (("b.txt", 0), "three") in pairs

    def test_members_sorted(self):
        buffer = self.make_zip({"z.txt": "zz\n", "a.txt": "aa\n"})
        keys = [k for k, _ in ZipReader(buffer)]
        assert keys == [("a.txt", 0), ("z.txt", 0)]

    def test_wordcount_over_zip_input(self, tmp_path):
        path = tmp_path / "corpus.zip"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("one.txt", "alpha beta\n")
            archive.writestr("two.txt", "beta gamma\n")
        prog = run_program(
            WordCount, [str(path), str(tmp_path / "out")], impl="serial"
        )
        counts = dict(prog.output_data.iterdata())
        assert counts == {"alpha": 1, "beta": 2, "gamma": 1}
