"""Record format round-trips and registry dispatch."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.io.formats import (
    BinReader,
    BinWriter,
    HexReader,
    HexWriter,
    TextReader,
    TextWriter,
    default_read_pairs,
    reader_for,
    writer_for,
)
from repro.io.serializers import IntSerializer, StrSerializer


def roundtrip_bin(pairs, **kw):
    buffer = io.BytesIO()
    writer = BinWriter(buffer, **kw)
    for pair in pairs:
        writer.writepair(pair)
    writer.finish()
    buffer.seek(0)
    return list(BinReader(buffer, **kw))


def roundtrip_hex(pairs):
    buffer = io.BytesIO()
    writer = HexWriter(buffer)
    for pair in pairs:
        writer.writepair(pair)
    writer.finish()
    buffer.seek(0)
    return list(HexReader(buffer))


class TestTextFormat:
    def test_writer_renders_tab_separated(self):
        buffer = io.BytesIO()
        TextWriter(buffer).writepair(("word", 3))
        assert buffer.getvalue() == b"word\t3\n"

    def test_reader_yields_line_number_keys(self):
        buffer = io.BytesIO(b"alpha\nbeta\n")
        assert list(TextReader(buffer)) == [(0, "alpha"), (1, "beta")]

    def test_reader_strips_crlf(self):
        buffer = io.BytesIO(b"alpha\r\n")
        assert list(TextReader(buffer)) == [(0, "alpha")]

    def test_reader_tolerates_invalid_utf8(self):
        buffer = io.BytesIO(b"\xff\xfe bad\n")
        ((_, line),) = list(TextReader(buffer))
        assert "bad" in line


class TestBinFormat:
    def test_roundtrip_arbitrary_objects(self):
        pairs = [("k", {"nested": [1, 2]}), ((1, 2), None)]
        assert roundtrip_bin(pairs) == pairs

    def test_roundtrip_with_typed_serializers(self):
        pairs = [("word", 1), ("other", 2)]
        assert roundtrip_bin(
            pairs, key_serializer=StrSerializer, value_serializer=IntSerializer
        ) == pairs

    def test_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            BinReader(io.BytesIO(b"garbage data"))

    def test_truncated_header_detected(self):
        buffer = io.BytesIO()
        writer = BinWriter(buffer)
        writer.writepair(("a", 1))
        data = buffer.getvalue()[:-3]  # drop part of the value
        reader = BinReader(io.BytesIO(data))
        with pytest.raises(ValueError, match="truncated"):
            list(reader)

    def test_empty_stream(self):
        buffer = io.BytesIO()
        BinWriter(buffer).finish()
        buffer.seek(0)
        assert list(BinReader(buffer)) == []


class TestHexFormat:
    def test_roundtrip(self):
        pairs = [("key", [1, 2]), (9, "value")]
        assert roundtrip_hex(pairs) == pairs

    def test_blank_lines_skipped(self):
        buffer = io.BytesIO()
        writer = HexWriter(buffer)
        writer.writepair(("a", 1))
        buffer.write(b"\n\n")
        writer.writepair(("b", 2))
        buffer.seek(0)
        assert list(HexReader(buffer)) == [("a", 1), ("b", 2)]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            list(HexReader(io.BytesIO(b"justonefield\n")))

    def test_output_is_grepable_ascii(self):
        buffer = io.BytesIO()
        HexWriter(buffer).writepair(("a", 1))
        line = buffer.getvalue()
        assert line.endswith(b"\n")
        assert all(32 <= c < 127 or c == 10 for c in line)


class TestRegistry:
    @pytest.mark.parametrize(
        "path,writer,reader",
        [
            ("x.txt", TextWriter, TextReader),
            ("x.mtxt", TextWriter, TextReader),
            ("dir/y.mrsb", BinWriter, BinReader),
            ("z.mrsx", HexWriter, HexReader),
        ],
    )
    def test_known_extensions(self, path, writer, reader):
        assert writer_for(path) is writer
        assert reader_for(path) is reader

    def test_unknown_extension_reads_as_text(self):
        assert reader_for("book.html") is TextReader
        assert reader_for("README") is TextReader

    def test_case_insensitive(self):
        assert reader_for("X.MRSB") is BinReader

    def test_default_read_pairs(self, tmp_path):
        path = tmp_path / "lines.txt"
        path.write_text("one\ntwo\n")
        assert list(default_read_pairs(str(path))) == [(0, "one"), (1, "two")]


@given(
    st.lists(
        st.tuples(
            st.one_of(st.text(), st.integers(), st.binary()),
            st.one_of(st.none(), st.integers(), st.text(),
                      st.lists(st.integers(), max_size=3)),
        ),
        max_size=30,
    )
)
def test_bin_roundtrip_property(pairs):
    assert roundtrip_bin(pairs) == pairs


@given(st.lists(st.tuples(st.integers(), st.text()), max_size=20))
def test_hex_roundtrip_property(pairs):
    assert roundtrip_hex(pairs) == pairs
