"""Task span lifecycle and the tracer registry."""

from repro.observability.tracing import EVENTS, TaskSpan, Tracer


class TestTaskSpan:
    def test_lifecycle_events_recorded_in_order(self):
        span = TaskSpan("ds1", 0)
        for event in ("queued", "started", "map", "serialize", "committed"):
            span.mark(event)
        assert [name for name, _ in span.events] == [
            "queued", "started", "map", "serialize", "committed",
        ]
        assert span.has_event("map")
        assert not span.has_event("reduce")

    def test_mark_attributes_elapsed_to_event(self):
        span = TaskSpan("ds1", 0)
        span.mark("queued", timestamp=10.0)
        span.mark("started", timestamp=10.5)
        span.mark("map", timestamp=12.5)
        assert span.durations["started"] == 0.5
        assert span.durations["map"] == 2.0
        assert "queued" not in span.durations  # first event has no prior
        assert span.total_seconds == 2.5

    def test_repeated_event_accumulates_duration(self):
        span = TaskSpan("ds1", 0)
        span.mark("queued", timestamp=0.0)
        span.mark("map", timestamp=1.0)
        span.mark("map", timestamp=1.5)
        assert span.durations["map"] == 1.5

    def test_clock_skew_clamped_to_zero(self):
        span = TaskSpan("ds1", 0)
        span.mark("queued", timestamp=5.0)
        span.mark("started", timestamp=4.0)  # goes backwards
        assert span.durations["started"] == 0.0

    def test_add_duration_for_piggybacked_phases(self):
        span = TaskSpan("ds1", 3)
        span.add_duration("map", 0.25)
        span.add_duration("map", 0.25)
        span.add_duration("transfer", 0.1)
        assert span.durations_dict() == {"map": 0.5, "transfer": 0.1}

    def test_to_dict_uses_offsets_from_first_event(self):
        span = TaskSpan("ds1", 2)
        span.mark("queued", timestamp=100.0)
        span.mark("started", timestamp=100.25)
        d = span.to_dict()
        assert d["dataset_id"] == "ds1"
        assert d["task_index"] == 2
        assert d["events"] == [
            {"event": "queued", "offset": 0.0},
            {"event": "started", "offset": 0.25},
        ]
        assert d["total_seconds"] == 0.25

    def test_empty_span_to_dict(self):
        d = TaskSpan("ds1", 0).to_dict()
        assert d["events"] == []
        assert d["total_seconds"] == 0.0
        assert TaskSpan("ds1", 0).total_seconds == 0.0

    def test_canonical_event_names(self):
        assert EVENTS == (
            "queued", "started", "map", "reduce",
            "serialize", "transfer", "committed",
        )


class TestTracer:
    def test_span_get_or_create(self):
        tracer = Tracer()
        a = tracer.span("ds1", 0)
        assert tracer.span("ds1", 0) is a
        assert tracer.span("ds1", 1) is not a
        assert len(tracer) == 2

    def test_get_returns_none_for_unknown(self):
        assert Tracer().get("nope", 0) is None

    def test_spans_sorted_by_dataset_then_index(self):
        tracer = Tracer()
        tracer.span("b", 1)
        tracer.span("a", 1)
        tracer.span("a", 0)
        keys = [(s.dataset_id, s.task_index) for s in tracer.spans()]
        assert keys == [("a", 0), ("a", 1), ("b", 1)]

    def test_spans_for_filters_by_dataset(self):
        tracer = Tracer()
        tracer.span("a", 0)
        tracer.span("b", 0)
        assert [s.dataset_id for s in tracer.spans_for("a")] == ["a"]

    def test_snapshot_is_plain_data(self):
        import json

        tracer = Tracer()
        tracer.span("a", 0).mark("queued", timestamp=1.0)
        snap = tracer.snapshot()
        assert len(snap) == 1
        json.dumps(snap)  # must not raise
