"""Counters, gauges, histograms, and registry aggregation."""

import threading

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_VERSION,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0.0

    def test_inc_default_and_amount(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        c = Counter()

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(5)
        g.add(-2)
        assert g.value == 3.0

    def test_can_go_negative(self):
        g = Gauge()
        g.add(-1)
        assert g.value == -1.0


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram()
        assert h.to_dict() == {
            "count": 0, "total": 0.0, "min": None, "max": None, "mean": 0.0,
        }

    def test_observe_updates_summary(self):
        h = Histogram()
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        summary = h.to_dict()
        assert summary["count"] == 3
        assert summary["total"] == 12.0
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0
        assert summary["mean"] == pytest.approx(4.0)
        assert h.mean == pytest.approx(4.0)

    def test_merge_dict(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(3.0)
        b.observe(5.0)
        a.merge_dict(b.to_dict())
        summary = a.to_dict()
        assert summary["count"] == 3
        assert summary["total"] == 9.0
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0

    def test_merge_empty_is_noop(self):
        h = Histogram()
        h.observe(2.0)
        h.merge_dict(Histogram().to_dict())
        assert h.to_dict()["count"] == 1


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_same_name_different_kinds_coexist(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.gauge("n").set(7)
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 1.0
        assert snap["gauges"]["n"] == 7.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("tasks.completed").inc(3)
        reg.gauge("slaves.alive").set(2)
        reg.histogram("task.seconds").observe(0.5)
        snap = reg.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        assert snap["counters"] == {"tasks.completed": 3.0}
        assert snap["gauges"] == {"slaves.alive": 2.0}
        assert snap["histograms"]["task.seconds"]["count"] == 1

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("b").observe(1.0)
        json.dumps(reg.snapshot())  # must not raise

    def test_merge_snapshot_counters_add(self):
        master, slave = MetricsRegistry(), MetricsRegistry()
        master.counter("tasks.completed").inc(2)
        slave.counter("tasks.completed").inc(3)
        master.merge_snapshot(slave.snapshot())
        assert master.counter("tasks.completed").value == 5.0

    def test_merge_snapshot_gauges_last_write_wins(self):
        master, slave = MetricsRegistry(), MetricsRegistry()
        master.gauge("depth").set(10)
        slave.gauge("depth").set(4)
        master.merge_snapshot(slave.snapshot())
        assert master.gauge("depth").value == 4.0

    def test_merge_snapshot_histograms_merge(self):
        master, slave = MetricsRegistry(), MetricsRegistry()
        master.histogram("t").observe(1.0)
        slave.histogram("t").observe(9.0)
        master.merge_snapshot(slave.snapshot())
        summary = master.histogram("t").to_dict()
        assert summary["count"] == 2
        assert summary["min"] == 1.0
        assert summary["max"] == 9.0

    def test_merge_empty_or_none_snapshot_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.merge_snapshot({})
        reg.merge_snapshot(None)
        assert reg.counter("a").value == 1.0

    def test_double_merge_double_counts(self):
        """Documents why slaves ship *per-task* snapshots: merging the
        same cumulative snapshot twice over-counts."""
        master, slave = MetricsRegistry(), MetricsRegistry()
        slave.counter("n").inc()
        snap = slave.snapshot()
        master.merge_snapshot(snap)
        master.merge_snapshot(snap)
        assert master.counter("n").value == 2.0


class TestConcurrentWriters:
    """Threaded writers hammering one registry: no lost updates, and
    snapshots taken mid-flight are internally consistent plain data."""

    N_THREADS = 8
    PER_THREAD = 500

    def hammer(self, reg, barrier):
        barrier.wait()
        for i in range(self.PER_THREAD):
            reg.counter("tasks.completed").inc()
            reg.gauge("queue.depth").set(i)
            reg.histogram("task.seconds").observe(0.001 * (i % 10 + 1))

    def test_no_lost_updates(self):
        reg = MetricsRegistry()
        barrier = threading.Barrier(self.N_THREADS)
        threads = [
            threading.Thread(target=self.hammer, args=(reg, barrier))
            for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.N_THREADS * self.PER_THREAD
        snap = reg.snapshot()
        assert snap["counters"]["tasks.completed"] == float(expected)
        hist = snap["histograms"]["task.seconds"]
        assert hist["count"] == expected
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.010)
        assert hist["total"] == pytest.approx(hist["mean"] * hist["count"])
        assert snap["gauges"]["queue.depth"] == float(self.PER_THREAD - 1)

    def test_snapshots_during_writes_are_consistent(self):
        """A snapshot races the writers; whatever it catches must be
        serializable and self-consistent (count/total/mean agree)."""
        import json

        reg = MetricsRegistry()
        barrier = threading.Barrier(self.N_THREADS + 1)
        threads = [
            threading.Thread(target=self.hammer, args=(reg, barrier))
            for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        snapshots = [reg.snapshot() for _ in range(50)]
        for t in threads:
            t.join()
        counts = []
        for snap in snapshots:
            json.dumps(snap)  # plain data even mid-hammer
            hist = snap["histograms"].get("task.seconds")
            if hist and hist["count"]:
                assert hist["mean"] == pytest.approx(
                    hist["total"] / hist["count"]
                )
                assert hist["min"] <= hist["mean"] <= hist["max"]
                counts.append(hist["count"])
        # Observation counts never move backwards across snapshots.
        assert counts == sorted(counts)

    def test_concurrent_merge_and_write(self):
        """merge_snapshot racing local increments (the master merging
        slave payloads while its own scheduler thread counts)."""
        reg = MetricsRegistry()
        remote = MetricsRegistry()
        remote.counter("tasks.completed").inc()
        payload = remote.snapshot()
        n_merges = 200

        def merger():
            for _ in range(n_merges):
                reg.merge_snapshot(payload)

        def incrementer():
            for _ in range(n_merges):
                reg.counter("tasks.completed").inc()

        threads = [
            threading.Thread(target=merger),
            threading.Thread(target=incrementer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("tasks.completed").value == float(2 * n_merges)
