"""Timeline conversion: trace_event structure Perfetto accepts."""

import json

import pytest

from repro.observability.events import EventLog
from repro.observability.timeline import (
    trace_from_events,
    trace_from_jsonl,
    trace_from_report,
    write_trace,
)


def assert_perfetto_structure(trace):
    """Structural checks for the trace_event JSON Array Format:
    required keys per phase type, numeric timestamps, and strict B/E
    pairing per (pid, tid) lane."""
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    stacks = {}
    for entry in trace["traceEvents"]:
        ph = entry["ph"]
        assert "pid" in entry and "tid" in entry
        if ph == "M":
            assert entry["name"] in ("process_name", "thread_name")
            assert "name" in entry["args"]
            continue
        ts = entry["ts"]
        assert isinstance(ts, float) and ts >= 0.0
        lane = (entry["pid"], entry["tid"])
        if ph == "B":
            assert entry["name"]
            stacks.setdefault(lane, []).append(entry)
        elif ph == "E":
            assert stacks.get(lane), f"E without open B on lane {lane}"
            begin = stacks[lane].pop()
            assert ts >= begin["ts"]
        elif ph == "i":
            assert entry["s"] == "g"
            assert entry["name"]
        else:
            pytest.fail(f"unexpected phase type {ph!r}")
    unclosed = {lane: stack for lane, stack in stacks.items() if stack}
    assert not unclosed, f"unterminated B spans: {unclosed}"


def committed_task(log, dataset_id, task_index, start, worker=None):
    fields = {"dataset_id": dataset_id, "task_index": task_index}
    if worker is not None:
        fields["worker"] = worker
    log.emit("task.started", t=start, **fields)
    log.emit("task.phase", t=start + 0.5, phase="map", seconds=0.5, **fields)
    log.emit("task.phase", t=start + 0.6, phase="serialize", seconds=0.1,
             **fields)
    log.emit("task.committed", t=start + 0.7, **fields)


class TestTraceFromEvents:
    def test_empty_stream(self):
        trace = trace_from_events([])
        assert trace == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_committed_task_renders_nested_spans(self):
        log = EventLog("serial", ring_size=None)
        committed_task(log, "ds1", 0, start=100.0)
        trace = trace_from_events(log.snapshot())
        assert_perfetto_structure(trace)
        names = [e.get("name") for e in trace["traceEvents"]
                 if e["ph"] == "B"]
        assert names == ["ds1[0]", "map", "serialize"]

    def test_timestamps_rebased_to_stream_start_in_micros(self):
        log = EventLog("serial", ring_size=None)
        log.emit("dataset.submitted", t=50.0, dataset_id="ds1")
        committed_task(log, "ds1", 0, start=51.0)
        trace = trace_from_events(log.snapshot())
        task_begin = next(e for e in trace["traceEvents"]
                          if e["ph"] == "B" and e["name"] == "ds1[0]")
        assert task_begin["ts"] == pytest.approx(1.0 * 1e6)

    def test_uncommitted_task_renders_as_instants_only(self):
        """A task that died keeps the B/E invariant: no unterminated
        span, just its failure instant."""
        log = EventLog("serial", ring_size=None)
        fields = {"dataset_id": "ds1", "task_index": 0}
        log.emit("task.started", t=1.0, **fields)
        log.emit("task.failed", t=2.0, error="boom", **fields)
        trace = trace_from_events(log.snapshot())
        assert_perfetto_structure(trace)
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert "B" not in phases
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["task.failed"]
        assert instants[0]["args"]["error"] == "boom"

    def test_requeued_task_keeps_last_start(self):
        log = EventLog("serial", ring_size=None)
        fields = {"dataset_id": "ds1", "task_index": 0}
        log.emit("task.started", t=1.0, **fields)
        log.emit("task.requeued", t=2.0, **fields)
        committed_task(log, "ds1", 0, start=3.0)
        trace = trace_from_events(log.snapshot())
        assert_perfetto_structure(trace)
        task_begin = next(e for e in trace["traceEvents"]
                          if e["ph"] == "B" and e["name"] == "ds1[0]")
        assert task_begin["ts"] == pytest.approx(2.0 * 1e6)

    def test_worker_field_assigns_lane(self):
        log = EventLog("multiprocess", ring_size=None)
        committed_task(log, "ds1", 0, start=1.0, worker=0)
        committed_task(log, "ds1", 1, start=1.0, worker=3)
        trace = trace_from_events(log.snapshot())
        assert_perfetto_structure(trace)
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "B"}
        assert tids == {1, 4}  # worker id + 1
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"worker-0", "worker-3"} <= thread_names

    def test_slave_field_assigns_lane(self):
        log = EventLog("master", ring_size=None)
        fields = {"dataset_id": "ds1", "task_index": 0, "slave": 2}
        log.emit("task.started", t=1.0, **fields)
        log.emit("task.committed", t=2.0, **fields)
        trace = trace_from_events(log.snapshot())
        assert_perfetto_structure(trace)
        task_begin = next(e for e in trace["traceEvents"] if e["ph"] == "B")
        assert task_begin["tid"] == 3
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "slave-2" in thread_names

    def test_process_metadata_labels_role(self):
        log = EventLog("master", ring_size=None)
        committed_task(log, "ds1", 0, start=1.0)
        trace = trace_from_events(log.snapshot())
        process_names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert process_names == ["master"]

    def test_instant_markers_for_lifecycle_noise(self):
        log = EventLog("master", ring_size=None)
        log.emit("slave.signin", t=0.0, slave=0)
        log.emit("slave.lost", t=1.0, slave=0, reason="ping")
        log.emit("spill.bucket", t=2.0, dataset_id="ds1")
        trace = trace_from_events(log.snapshot())
        assert_perfetto_structure(trace)
        assert [e["name"] for e in trace["traceEvents"] if e["ph"] == "i"] == [
            "slave.signin", "slave.lost", "spill.bucket",
        ]

    def test_ignores_malformed_entries(self):
        trace = trace_from_events([{"name": "no-timestamp"}, "not-a-dict"])
        assert trace["traceEvents"] == []


class TestTraceFromJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog("serial", path=path, ring_size=None)
        committed_task(log, "ds1", 0, start=10.0)
        in_memory = trace_from_events(log.snapshot())
        log.close()
        assert trace_from_jsonl(path) == in_memory


class TestTraceFromReport:
    def make_report(self):
        from tests.observability.test_export import sample_report

        return sample_report()

    def test_structure_and_phase_nesting(self):
        trace = trace_from_report(self.make_report())
        assert_perfetto_structure(trace)
        begins = [e["name"] for e in trace["traceEvents"] if e["ph"] == "B"]
        assert begins[0] == "ds1[0]"
        assert "map" in begins
        # Fetch (queued->started) renders under its display label.
        assert "fetch" in begins

    def test_each_task_rebased_at_zero(self):
        trace = trace_from_report(self.make_report())
        task_begins = [e for e in trace["traceEvents"]
                       if e["ph"] == "B" and e.get("cat") == "task"]
        assert all(e["ts"] == 0.0 for e in task_begins)

    def test_empty_report(self):
        trace = trace_from_report({"role": "serial"})
        assert [e["ph"] for e in trace["traceEvents"]] == ["M"]


class TestWriteTrace:
    def test_writes_parseable_json(self, tmp_path):
        log = EventLog("serial", ring_size=None)
        committed_task(log, "ds1", 0, start=1.0)
        trace = trace_from_events(log.snapshot())
        path = str(tmp_path / "deep" / "trace.json")
        assert write_trace(trace, path) == path
        with open(path) as f:
            assert json.load(f) == trace

    def test_atomic_no_tmp_left_behind(self, tmp_path):
        write_trace({"traceEvents": []}, str(tmp_path / "t.json"))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.json"]
