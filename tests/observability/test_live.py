"""The live observability plane, end to end on real backends.

Covers the acceptance criteria for the event-log/trace/status work:
every backend's ``--mrs-event-log`` JSONL has complete, seq-ordered
per-task lifecycles; ``--mrs-trace`` output passes the Perfetto
structural checks; ``Job.status()``, the progress ticker, and the
``--mrs-status-http`` endpoint all render the same live view; and
cross-process span merging never double-counts compute.
"""

import io
import json
import threading
import urllib.request

import pytest

import repro as mrs
from repro.core.job import Backend
from repro.core.main import run_program
from repro.observability import Observability
from repro.observability.events import read_jsonl
from repro.observability.progress import ProgressTicker, format_status_line
from repro.observability.timeline import trace_from_jsonl
from tests.observability.test_integration import WordCount
from tests.observability.test_timeline import assert_perfetto_structure

#: Lifecycle every committed task must log, in seq order.
LIFECYCLE = ("task.queued", "task.started", "task.committed")


class MaterializedWordCount(WordCount):
    """WordCount that collects its output inside run(): backends that
    own their tmpdir (multiprocess) delete task output on close."""

    def run(self, job):
        status = super().run(job)
        self.counts = dict(self.output_data.iterdata())
        return status


def run_with_event_log(impl, tmp_path, **extra):
    log_path = str(tmp_path / "events.jsonl")
    trace_path = str(tmp_path / "trace.json")
    program = run_program(
        MaterializedWordCount, [], impl=impl,
        event_log=log_path, trace=trace_path, **extra,
    )
    assert program.counts["the"] == 3
    return log_path, trace_path


def lifecycle_by_task(events):
    tasks = {}
    for event in events:
        fields = event.get("fields") or {}
        if "dataset_id" in fields and "task_index" in fields:
            key = (fields["dataset_id"], fields["task_index"])
            tasks.setdefault(key, []).append(event)
    return tasks


class TestBackendEventLogs:
    """One run per backend; JSONL complete and ordered, trace valid."""

    @pytest.mark.parametrize("impl", ["serial", "mockparallel"])
    def test_single_process_backends(self, impl, tmp_path):
        self.check(impl, tmp_path)

    def test_multiprocess_backend(self, tmp_path):
        self.check("multiprocess", tmp_path, procs=2)

    def check(self, impl, tmp_path, **extra):
        log_path, trace_path = run_with_event_log(impl, tmp_path, **extra)
        events = read_jsonl(log_path)

        # Per-process sequence numbers are complete and in file order.
        by_pid = {}
        for event in events:
            by_pid.setdefault(event["pid"], []).append(event["seq"])
        for pid, seqs in by_pid.items():
            assert seqs == list(range(1, len(seqs) + 1)), (
                f"pid {pid} seq gap or reorder"
            )

        # Every task logged its full lifecycle, in order, with phases
        # between started and committed.
        tasks = lifecycle_by_task(events)
        assert len(tasks) == WordCount.N_TASKS
        for key, task_events in tasks.items():
            names = [e["name"] for e in task_events]
            positions = [names.index(name) for name in LIFECYCLE]
            assert positions == sorted(positions), (
                f"task {key} lifecycle out of order: {names}"
            )
            phase_names = [
                e["fields"]["phase"]
                for e in task_events
                if e["name"] == "task.phase"
            ]
            assert "map" in phase_names or "reduce" in phase_names
            first_phase = names.index("task.phase")
            assert names.index("task.started") < first_phase
            assert first_phase < names.index("task.committed")

        # Dataset lifecycle: submitted before complete, both present.
        names = [e["name"] for e in events]
        assert names.count("dataset.submitted") == 2  # map + reduce
        assert names.count("dataset.complete") == 2
        assert names.index("dataset.submitted") < names.index(
            "dataset.complete"
        )

        # The trace written alongside passes the Perfetto checks and
        # matches a rebuild from the JSONL.
        with open(trace_path) as f:
            trace = json.load(f)
        assert_perfetto_structure(trace)
        task_begins = [e for e in trace["traceEvents"]
                       if e["ph"] == "B" and e.get("cat") == "task"]
        assert len(task_begins) == WordCount.N_TASKS
        assert_perfetto_structure(trace_from_jsonl(log_path))


@pytest.mark.integration
class TestClusterEventLog:
    def test_master_slave_lifecycle_and_trace(self, tmp_path):
        from repro.apps.pi.estimator import PiEstimator
        from repro.runtime.cluster import LocalCluster

        log_path = str(tmp_path / "events.jsonl")
        trace_path = str(tmp_path / "trace.json")
        flags = ["--pi-samples", "4000", "--pi-tasks", "4"]
        with LocalCluster(
            PiEstimator, flags, n_slaves=2,
            opt_overrides={"event_log": log_path, "trace": trace_path},
        ) as cluster:
            cluster.run()
        events = read_jsonl(log_path)
        names = [e["name"] for e in events]
        assert names.count("slave.signin") == 2
        tasks = lifecycle_by_task(events)
        assert len(tasks) >= 4
        for key, task_events in tasks.items():
            task_names = [e["name"] for e in task_events]
            positions = [task_names.index(n) for n in LIFECYCLE]
            assert positions == sorted(positions)
            # Slave-side phases were piggybacked and re-anchored.
            assert "task.phase" in task_names
        with open(trace_path) as f:
            trace = json.load(f)
        assert_perfetto_structure(trace)
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(name.startswith("slave-") for name in thread_names)


class TestJobStatus:
    def test_serial_status_mid_run(self):
        class Introspective(WordCount):
            def run(self, job):
                status = super().run(job)
                self.live_status = job.status()
                return status

        program = run_program(Introspective, [], impl="serial")
        status = program.live_status
        assert status["role"] == "serial"
        assert status["tasks"] == {
            "total": WordCount.N_TASKS,
            "done": WordCount.N_TASKS,
            "running": 0,
        }
        assert status["overhead_fraction"] is not None
        assert 0.0 <= status["overhead_fraction"] <= 1.0
        assert status["eta_seconds"] is None  # nothing remaining

    def test_multiprocess_status_includes_pool_state(self):
        class Introspective(WordCount):
            def run(self, job):
                status = super().run(job)
                self.live_status = job.status()
                return status

        program = run_program(Introspective, [], impl="multiprocess", procs=2)
        status = program.live_status
        assert status["role"] == "multiprocess"
        assert status["workers"]["alive"] == 2
        assert status["tasks"]["done"] == WordCount.N_TASKS
        assert status["outstanding"] == 0

    def test_status_reports_event_log_position(self, tmp_path):
        class Introspective(WordCount):
            def run(self, job):
                status = super().run(job)
                self.live_status = job.status()
                return status

        program = run_program(
            Introspective, [], impl="serial",
            event_log=str(tmp_path / "e.jsonl"),
        )
        events_view = program.live_status["events"]
        assert events_view["last_seq"] > 0
        assert events_view["log_path"].endswith("e.jsonl")

    def test_backend_without_observability_reports_empty(self):
        assert Backend().status() == {}


class TestProgressTicker:
    def sample_status(self):
        return {
            "role": "serial",
            "tasks": {"total": 10, "done": 4, "running": 2},
            "eta_seconds": 3.21,
            "overhead_fraction": 0.25,
        }

    def test_format_status_line(self):
        line = format_status_line(self.sample_status())
        assert line == "[mrs] 4/10 tasks (40%)  eta 3.2s  overhead 25%  2 running"

    def test_format_handles_sparse_status(self):
        assert format_status_line({}) == "[mrs] 0/0 tasks (0%)"

    def test_ticker_renders_to_stream_and_stops(self):
        class FakeBackend:
            def status(self):
                return {
                    "role": "serial",
                    "tasks": {"total": 5, "done": 5, "running": 0},
                }

        stream = io.StringIO()
        ticker = ProgressTicker(FakeBackend(), interval=0.01, stream=stream)
        with ticker:
            pass  # stop() renders a final line even if no tick fired
        out = stream.getvalue()
        assert "[mrs] 5/5 tasks (100%)" in out
        assert out.endswith("\n")

    def test_ticker_survives_broken_backend(self):
        class Broken:
            def status(self):
                raise RuntimeError("torn down")

        stream = io.StringIO()
        with ProgressTicker(Broken(), interval=0.01, stream=stream):
            pass  # must not raise


class TestStatusServer:
    """The --mrs-status-http JSON endpoint over a live backend."""

    class FakeBackend:
        def __init__(self):
            self.observability = Observability(role="serial")
            self.observability.enable_events()
            self.observability.events.emit("task.started", task_index=0)

        def status(self):
            return self.observability.status_view()

        def metrics(self):
            return self.observability.report()

    @pytest.fixture
    def server(self):
        from repro.comm.dataserver import StatusServer

        server = StatusServer(self.FakeBackend())
        yield server
        server.shutdown()

    def get(self, server, route):
        with urllib.request.urlopen(server.url + route, timeout=5) as resp:
            return resp.status, json.loads(resp.read())

    def test_status_view(self, server):
        code, payload = self.get(server, "/status")
        assert code == 200
        assert payload["role"] == "serial"
        assert "tasks" in payload

    def test_metrics_view_json(self, server):
        # The default /metrics is now Prometheus text; ?format=json
        # keeps the original aggregate report for JSON consumers.
        code, payload = self.get(server, "/metrics?format=json")
        assert code == 200
        assert payload["version"] == 1
        assert payload["role"] == "serial"

    def test_metrics_view_prometheus_default(self, server):
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            body = resp.read().decode("utf-8")
        assert "mrs_up 1" in body
        assert "# TYPE mrs_up gauge" in body

    def test_events_view_with_since(self, server):
        code, payload = self.get(server, "/events?since=0")
        assert code == 200
        assert payload["enabled"] is True
        assert [e["name"] for e in payload["events"]] == ["task.started"]
        code, payload = self.get(server, f"/events?since={payload['last_seq']}")
        assert payload["events"] == []

    def test_unknown_route_404_lists_views(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.get(server, "/nope")
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "/status" in body["views"]


class TestCrossProcessSpanMerge:
    """Satellite: a slave-reported duration set and the master's local
    span for the same (dataset, task) must never double-count compute
    in operations() rows."""

    def simulate_master_side(self):
        """The master's half of _record_task_metrics: a local span that
        only saw queued/started/committed, plus the slave's piggybacked
        durations attached via add_duration."""
        obs = Observability(role="master")
        obs.note_operation("ds1", "map")
        span = obs.tracer.span("ds1", 0)
        span.mark("queued", timestamp=0.0)
        span.mark("started", timestamp=0.1)
        # Slave-side durations ride the done RPC (fetch 0.05, map 0.5,
        # serialize 0.1, transfer 0.05 — slave wall 0.7s).
        for event, seconds in [
            ("started", 0.05), ("map", 0.5),
            ("serialize", 0.1), ("transfer", 0.05),
        ]:
            span.add_duration(event, seconds)
        span.mark("committed", timestamp=0.9)
        return obs

    def test_compute_counted_exactly_once(self):
        obs = self.simulate_master_side()
        (row,) = obs.operations_breakdown()
        # Compute is the slave's measured 0.5 s of map — attached once,
        # not re-derived from the master's own queued->committed gap.
        assert row["compute_seconds"] == pytest.approx(0.5)
        assert row["wall_seconds"] == pytest.approx(0.9)
        assert row["overhead_seconds"] == pytest.approx(0.4)
        assert row["serialize_seconds"] == pytest.approx(0.1)

    def test_merge_is_per_task_not_cumulative(self):
        """Committing a second task must not inflate the first task's
        durations (add_duration is per-span, per-completion)."""
        obs = self.simulate_master_side()
        span2 = obs.tracer.span("ds1", 1)
        span2.mark("queued", timestamp=0.0)
        span2.mark("started", timestamp=0.1)
        span2.add_duration("map", 0.2)
        span2.mark("committed", timestamp=0.4)
        (row,) = obs.operations_breakdown()
        assert row["tasks"] == 2
        assert row["compute_seconds"] == pytest.approx(0.7)

    @pytest.mark.integration
    def test_cluster_operations_rows_are_consistent(self, tmp_path):
        """On a real cluster run, per-operation compute must stay within
        wall: the invariant double-counting would break."""
        from repro.apps.pi.estimator import PiEstimator
        from repro.runtime.cluster import LocalCluster

        flags = ["--pi-samples", "4000", "--pi-tasks", "4"]
        with LocalCluster(PiEstimator, flags, n_slaves=2) as cluster:
            cluster.run()
            report = cluster.backend.metrics()
        assert report["operations"]
        for op in report["operations"]:
            assert 0.0 <= op["compute_seconds"] <= op["wall_seconds"]
            assert op["overhead_seconds"] == pytest.approx(
                op["wall_seconds"] - op["compute_seconds"]
            )


class TestTaskProfiler:
    def test_keeps_n_slowest_and_marks_spans(self, tmp_path):
        import time

        from repro.observability.profiling import TaskProfiler
        from repro.observability.tracing import TaskSpan

        profiler = TaskProfiler(keep=2, directory=str(tmp_path))
        spans = []
        for index, sleep in enumerate([0.001, 0.05, 0.002, 0.08]):
            span = TaskSpan("ds1", index)
            spans.append(span)
            profiler.run(
                time.sleep, sleep,
                profile_dataset_id="ds1",
                profile_task_index=index,
                profile_span=span,
            )
        retained = profiler.retained()
        assert len(retained) == 2
        # The two slowest tasks (indices 3 and 1) own the profiles.
        marked = [s.task_index for s in spans if s.profile_path is not None]
        assert sorted(marked) == [1, 3]
        import os

        for seconds, path in retained:
            assert os.path.exists(path)
        # Evicted profiles are deleted and their spans cleared.
        assert len(list(tmp_path.iterdir())) == 2
        for span in spans:
            if span.profile_path is not None:
                assert os.path.exists(span.profile_path)

    def test_profiled_task_emits_event(self, tmp_path):
        from repro.observability.events import EventLog
        from repro.observability.profiling import TaskProfiler

        profiler = TaskProfiler(keep=1, directory=str(tmp_path))
        log = EventLog("serial")
        profiler.run(
            sum, [1, 2, 3],
            profile_dataset_id="ds1",
            profile_task_index=0,
            profile_events=log,
        )
        (event,) = log.snapshot()
        assert event["name"] == "task.profiled"
        assert event["fields"]["path"].endswith(".pstats")

    def test_profile_kwargs_never_collide_with_fn_kwargs(self, tmp_path):
        """The consumed keywords are namespaced profile_*; fn's own
        keywords (including one literally named 'span') pass through."""
        from repro.observability.profiling import TaskProfiler

        profiler = TaskProfiler(keep=1, directory=str(tmp_path))

        def fn(value, span=None):
            return value, span

        result = profiler.run(
            fn, 7, span="user-kwarg",
            profile_dataset_id="ds1", profile_task_index=0,
        )
        assert result == (7, "user-kwarg")

    def test_profiler_from_opts(self, tmp_path):
        from repro.observability.profiling import profiler_from_opts

        class Opts:
            profile_tasks = 0
            tmpdir = str(tmp_path)

        assert profiler_from_opts(Opts()) is None
        Opts.profile_tasks = 3
        profiler = profiler_from_opts(Opts())
        assert profiler.keep == 3
        assert profiler.directory.startswith(str(tmp_path))

    def test_serial_run_attaches_profiles_to_report(self, tmp_path):
        program = run_program(
            WordCount, [], impl="serial",
            profile_tasks=2, tmpdir=str(tmp_path),
        )
        profiled = [
            span for span in program.metrics_report["spans"]
            if span.get("profile")
        ]
        assert len(profiled) == 2
        import os

        for span in profiled:
            assert os.path.exists(span["profile"])
