"""The overhead budget gate (benchmarks/bench_overhead.py).

The gate's job is to fail CI when startup or per-operation overhead
regresses past the checked-in budget; these tests prove it actually
fails — on a deliberately-injected regression and on a tightened
budget — and passes the real measurements on this machine.
"""

import json
import os
import sys

import pytest

BENCHMARKS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks"
)
sys.path.insert(0, BENCHMARKS_DIR)

import bench_overhead  # noqa: E402


class TestCheckBudget:
    BUDGET = {
        "startup_seconds": 2.0,
        "overhead_seconds_per_operation": 0.3,
        "event_overhead_fraction": 0.75,
    }

    def ok_measurement(self):
        return {
            "startup_seconds": 0.01,
            "overhead_seconds_per_operation": 0.02,
            "event_overhead_fraction": 0.05,
        }

    def test_within_budget_passes(self):
        assert bench_overhead.check_budget(self.ok_measurement(),
                                           self.BUDGET) == []

    @pytest.mark.parametrize("metric,regressed", [
        ("startup_seconds", 30.0),          # a Hadoop-shaped startup
        ("overhead_seconds_per_operation", 5.0),  # accidental sleep
        ("event_overhead_fraction", 3.0),   # hot-path event emission
    ])
    def test_injected_regression_fails(self, metric, regressed):
        measured = self.ok_measurement()
        measured[metric] = regressed
        violations = bench_overhead.check_budget(measured, self.BUDGET)
        assert len(violations) == 1
        assert violations[0].startswith(metric + ":")

    def test_missing_budget_key_is_not_gated(self):
        measured = self.ok_measurement()
        measured["startup_seconds"] = 999.0
        budget = dict(self.BUDGET)
        del budget["startup_seconds"]
        assert bench_overhead.check_budget(measured, budget) == []

    def test_every_gated_metric_has_a_checked_in_budget(self):
        budget = bench_overhead.load_budget(bench_overhead.DEFAULT_BUDGET)
        for key in bench_overhead.GATED:
            assert key in budget, f"{key} missing from overhead_budget.json"
            assert budget[key] > 0

    def test_load_budget_rejects_shapeless_file(self, tmp_path):
        path = str(tmp_path / "b.json")
        with open(path, "w") as f:
            json.dump({"no": "budgets"}, f)
        with pytest.raises(ValueError):
            bench_overhead.load_budget(path)


class TestGateEndToEnd:
    """main() on a real (tiny) job: exit 0 in budget, exit 1 past it."""

    def run_gate(self, tmp_path, budget):
        budget_path = str(tmp_path / "budget.json")
        with open(budget_path, "w") as f:
            json.dump({"version": 1, "budgets": budget}, f)
        out_path = str(tmp_path / "BENCH_overhead.json")
        argv = [
            "--smoke", "--repeat", "1",
            "--budget", budget_path, "--out", out_path,
        ]
        status = bench_overhead.main(argv)
        with open(out_path) as f:
            report = json.load(f)
        return status, report

    def test_passes_checked_in_style_budget(self, tmp_path, capsys):
        status, report = self.run_gate(tmp_path, {
            "startup_seconds": 2.0,
            "overhead_seconds_per_operation": 0.3,
        })
        assert status == 0
        rows = {row["metric"]: row for row in report["rows"]}
        assert rows["startup_seconds"]["within"] == "yes"
        assert rows["overhead_seconds_per_operation"]["within"] == "yes"

    def test_fails_on_regression_past_budget(self, tmp_path, capsys):
        """An impossible budget stands in for a deliberate regression:
        any measurable per-operation overhead now exceeds it."""
        status, report = self.run_gate(tmp_path, {
            "overhead_seconds_per_operation": 1e-9,
        })
        assert status == 1
        rows = {row["metric"]: row for row in report["rows"]}
        assert rows["overhead_seconds_per_operation"]["within"] == "no"
        assert any("BUDGET VIOLATION" in note for note in report["notes"])
        assert "FAIL:" in capsys.readouterr().err

    def test_no_gate_reports_but_never_fails(self, tmp_path):
        # --no-gate: same impossible budget, exit 0.
        budget_path = str(tmp_path / "budget.json")
        with open(budget_path, "w") as f:
            json.dump({"version": 1, "budgets":
                       {"overhead_seconds_per_operation": 1e-9}}, f)
        out_path = str(tmp_path / "BENCH_overhead.json")
        status = bench_overhead.main([
            "--smoke", "--repeat", "1", "--no-gate",
            "--budget", budget_path, "--out", out_path,
        ])
        assert status == 0
