"""JSON report round-trips and reader helpers."""

import os

import pytest

from repro.observability import Observability, export
from repro.observability.metrics import MetricsRegistry


def sample_report():
    obs = Observability(role="serial")
    obs.registry.counter("tasks.completed").inc(4)
    obs.registry.histogram("task.seconds").observe(0.5)
    obs.note_operation("ds1", "map")
    span = obs.tracer.span("ds1", 0)
    span.mark("queued", timestamp=0.0)
    span.mark("started", timestamp=0.1)
    span.mark("map", timestamp=0.6)
    span.mark("committed", timestamp=0.7)
    obs.phases.add("map", 0.5)
    obs.mark_startup_complete()
    return obs.report()


class TestRoundTrip:
    def test_render_parse_preserves_counters(self):
        report = sample_report()
        parsed = export.parse_json(export.render_json(report))
        assert parsed["metrics"]["counters"] == {
            "operations.map": 1.0,
            "tasks.completed": 4.0,
        }
        assert parsed == report  # the whole report survives, not just counters

    def test_file_round_trip(self, tmp_path):
        report = sample_report()
        path = str(tmp_path / "metrics.json")
        assert export.write_json(report, path) == path
        assert export.read_json(path) == report

    def test_write_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "m.json")
        export.write_json(sample_report(), path)
        assert os.path.exists(path)

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = str(tmp_path / "m.json")
        export.write_json(sample_report(), path)
        assert os.listdir(tmp_path) == ["m.json"]

    def test_parse_rejects_non_object(self):
        with pytest.raises(ValueError):
            export.parse_json("[1, 2, 3]")


class TestVersionValidation:
    def test_current_version_accepted(self):
        report = sample_report()
        assert report["version"] == export.REPORT_VERSION
        assert export.parse_json(export.render_json(report)) == report

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            export.parse_json('{"role": "serial"}')

    @pytest.mark.parametrize("version", ['"1"', "1.5", "null", "true"])
    def test_non_integer_version_rejected(self, version):
        with pytest.raises(ValueError, match="version"):
            export.parse_json('{"version": %s}' % version)

    def test_future_version_rejected_with_clear_error(self):
        future = export.REPORT_VERSION + 1
        with pytest.raises(ValueError, match=f"version {future} is newer"):
            export.parse_json('{"version": %d}' % future)

    def test_older_version_still_parses(self):
        """Version 0 never shipped, but the reader's contract is
        'reject only *newer*': old reports must stay readable."""
        assert export.parse_json('{"version": 0}')["version"] == 0


class TestReaderHelpers:
    def test_startup_seconds(self):
        report = sample_report()
        assert export.startup_seconds(report) == report["startup"]["seconds"]
        assert export.startup_seconds({}) == 0.0
        assert export.startup_seconds({"startup": {"seconds": None}}) == 0.0

    def test_phase_seconds(self):
        report = sample_report()
        assert export.phase_seconds(report, "map") == 0.5
        assert export.phase_seconds(report, "shuffle") == 0.0

    def test_span_count(self):
        assert export.span_count(sample_report()) == 1
        assert export.span_count({}) == 0

    def test_operation_overhead(self):
        report = sample_report()
        # wall = 0.7, compute (map) = 0.5 -> overhead 0.2
        assert export.operation_overhead_seconds(report) == pytest.approx(0.2)


class TestObservabilityFacade:
    def test_startup_mark_is_idempotent(self):
        obs = Observability()
        first = obs.mark_startup_complete()
        assert obs.mark_startup_complete() == first
        assert obs.registry.gauge("startup.seconds").value == first

    def test_report_before_startup_has_null_startup(self):
        report = Observability().report()
        assert report["startup"]["seconds"] is None
        assert report["summary"]["startup_seconds"] == 0.0

    def test_operations_breakdown_aggregates_spans(self):
        obs = Observability()
        obs.note_operation("ds1", "map")
        for index, (t_map, t_commit) in enumerate([(0.4, 0.5), (0.6, 0.7)]):
            span = obs.tracer.span("ds1", index)
            span.mark("started", timestamp=0.0)
            span.mark("map", timestamp=t_map)
            span.mark("committed", timestamp=t_commit)
        (row,) = obs.operations_breakdown()
        assert row["kind"] == "map"
        assert row["tasks"] == 2
        assert row["wall_seconds"] == pytest.approx(1.2)
        assert row["compute_seconds"] == pytest.approx(1.0)
        assert row["overhead_seconds"] == pytest.approx(0.2)

    def test_merge_remote_folds_slave_registry(self):
        obs = Observability(role="master")
        remote = MetricsRegistry()
        remote.counter("slave.tasks.completed").inc()
        obs.merge_remote(remote.snapshot())
        obs.merge_remote(remote.snapshot())
        snap = obs.registry.snapshot()
        assert snap["counters"]["slave.tasks.completed"] == 2.0

    def test_report_summary_task_count(self):
        obs = Observability()
        obs.tracer.span("a", 0)
        obs.tracer.span("a", 1)
        assert obs.report()["summary"]["task_count"] == 2
