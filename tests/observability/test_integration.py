"""End-to-end metrics: real runs produce complete, consistent reports."""

import pytest

import repro as mrs
from repro.core.main import run_program
from repro.observability import export


class WordCount(mrs.MapReduce):
    """Tiny WordCount with a fully determined task layout:
    3 source splits -> 3 map tasks, map output splits=2 -> 2 reduce
    tasks.  5 tasks total."""

    N_TASKS = 5

    def map(self, key, value):
        for word in value.split():
            yield (word, 1)

    def reduce(self, key, values):
        yield sum(values)

    def run(self, job):
        lines = [
            (0, "the quick brown fox"),
            (1, "jumps over the lazy dog"),
            (2, "the dog sleeps"),
        ]
        source = job.local_data(lines, splits=3)
        mapped = job.map_data(source, self.map, splits=2)
        reduced = job.reduce_data(mapped, self.reduce, splits=2)
        job.wait(reduced)
        self.output_data = reduced
        return 0


class TestSerialWordCountReport:
    @pytest.fixture
    def report(self):
        program = run_program(WordCount, [], impl="serial")
        assert dict(program.output_data.iterdata())["the"] == 3
        return program.metrics_report

    def test_nonzero_map_and_reduce_phases(self, report):
        assert export.phase_seconds(report, "map") > 0.0
        assert export.phase_seconds(report, "reduce") > 0.0
        # Reduce-side input gathering is attributed to "shuffle".
        assert export.phase_seconds(report, "shuffle") > 0.0

    def test_one_span_per_task(self, report):
        assert export.span_count(report) == WordCount.N_TASKS
        assert report["summary"]["task_count"] == WordCount.N_TASKS
        assert report["metrics"]["counters"]["tasks.completed"] == float(
            WordCount.N_TASKS
        )

    def test_every_span_ran_to_committed(self, report):
        for span in report["spans"]:
            events = [e["event"] for e in span["events"]]
            assert events[0] == "queued"
            assert "started" in events
            assert events[-1] == "committed"

    def test_startup_recorded(self, report):
        assert report["startup"]["seconds"] is not None
        assert export.startup_seconds(report) >= 0.0

    def test_operations_cover_both_datasets(self, report):
        kinds = sorted(op["kind"] for op in report["operations"])
        assert kinds == ["map", "reduce"]
        by_kind = {op["kind"]: op for op in report["operations"]}
        assert by_kind["map"]["tasks"] == 3
        assert by_kind["reduce"]["tasks"] == 2
        for op in report["operations"]:
            assert op["wall_seconds"] >= op["compute_seconds"] >= 0.0
            assert op["overhead_seconds"] >= 0.0

    def test_task_seconds_histogram_matches_task_count(self, report):
        hist = report["metrics"]["histograms"]["task.seconds"]
        assert hist["count"] == WordCount.N_TASKS
        assert hist["total"] > 0.0


class TestMetricsJsonOption:
    def test_run_program_dumps_report(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        program = run_program(
            WordCount, [], impl="serial", metrics_json=path
        )
        report = export.read_json(path)
        assert report == program.metrics_report
        assert report["role"] == "serial"
        assert export.span_count(report) == WordCount.N_TASKS

    def test_no_option_no_file(self, tmp_path):
        run_program(WordCount, [], impl="serial")
        assert not list(tmp_path.iterdir())


class TestJobMetricsApi:
    def test_job_metrics_mid_run(self):
        """job.metrics() is usable from inside run() for live progress."""

        class Introspective(WordCount):
            def run(self, job):
                status = super().run(job)
                self.live_report = job.metrics()
                return status

        program = run_program(Introspective, [], impl="serial")
        assert program.live_report["summary"]["task_count"] == WordCount.N_TASKS

    def test_backend_without_observability_reports_empty(self):
        from repro.core.job import Backend

        assert Backend().metrics() == {}


class TestMockParallelReport:
    def test_same_shape_as_serial(self):
        program = run_program(WordCount, [], impl="mockparallel")
        report = program.metrics_report
        assert report["role"] == "mockparallel"
        assert export.span_count(report) == WordCount.N_TASKS
        assert export.phase_seconds(report, "map") > 0.0


@pytest.mark.integration
class TestClusterPiggyback:
    def test_master_aggregates_slave_metrics(self, tmp_path):
        """Slave-side phase durations and registry snapshots ride the
        done RPC; the master report covers the whole cluster."""
        from repro.apps.pi.estimator import PiEstimator
        from repro.runtime.cluster import LocalCluster

        flags = ["--pi-samples", "4000", "--pi-tasks", "4"]
        with LocalCluster(PiEstimator, flags, n_slaves=2) as cluster:
            cluster.run()
            report = cluster.backend.metrics()

        assert report["role"] == "master"
        counters = report["metrics"]["counters"]
        completed = counters["tasks.completed"]
        assert completed >= 4  # 4 map tasks + reduce task(s)
        # Piggybacked per-task registries merged without double-counting.
        assert counters["slave.tasks.completed"] == completed
        assert report["metrics"]["histograms"]["slave.task.seconds"][
            "count"
        ] == completed
        # Slave-side compute durations were stitched into master spans.
        assert export.phase_seconds(report, "map") > 0.0
        assert export.span_count(report) == report["summary"]["task_count"]
        for span in report["spans"]:
            assert [e["event"] for e in span["events"]][0] == "queued"
        # RPC instrumentation observed the control-plane traffic.
        assert counters["rpc.server.calls"] > 0
        assert report["startup"]["seconds"] is not None
