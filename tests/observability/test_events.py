"""EventLog: ring buffer, crash-safe JSONL, and skew-tolerant merge."""

import json
import os
import threading

import pytest

from repro.observability import Observability
from repro.observability.events import (
    DEFAULT_RING_SIZE,
    EventLog,
    piggyback_events_from_span,
    read_jsonl,
    span_phase_marks,
)
from repro.observability.tracing import TaskSpan


class TestEmit:
    def test_envelope_fields(self):
        log = EventLog("master")
        event = log.emit("task.started", dataset_id="ds1", task_index=3)
        assert event["seq"] == 1
        assert event["name"] == "task.started"
        assert event["pid"] == os.getpid()
        assert event["role"] == "master"
        assert event["fields"] == {"dataset_id": "ds1", "task_index": 3}
        assert isinstance(event["t"], float)

    def test_no_fields_key_when_empty(self):
        assert "fields" not in EventLog("serial").emit("heartbeat")

    def test_seq_strictly_increasing(self):
        log = EventLog("serial")
        seqs = [log.emit("e")["seq"] for _ in range(10)]
        assert seqs == list(range(1, 11))
        assert log.last_seq == 10

    def test_explicit_timestamp_override(self):
        log = EventLog("serial")
        assert log.emit("task.phase", t=12.5)["t"] == 12.5

    def test_timestamps_monotonic(self):
        log = EventLog("serial")
        stamps = [log.emit("e")["t"] for _ in range(5)]
        assert stamps == sorted(stamps)


class TestRing:
    def test_bounded_ring_drops_oldest(self):
        log = EventLog("serial", ring_size=3)
        for i in range(5):
            log.emit("e", i=i)
        snapshot = log.snapshot()
        assert [e["seq"] for e in snapshot] == [3, 4, 5]
        # Sequence numbers keep counting past evicted entries.
        assert log.last_seq == 5

    def test_unbounded_ring_keeps_everything(self):
        log = EventLog("serial", ring_size=None)
        for _ in range(2 * DEFAULT_RING_SIZE):
            log.emit("e")
        assert len(log) == 2 * DEFAULT_RING_SIZE

    def test_snapshot_since_seq(self):
        log = EventLog("serial")
        for _ in range(6):
            log.emit("e")
        assert [e["seq"] for e in log.snapshot(since_seq=4)] == [5, 6]
        assert log.snapshot(since_seq=99) == []


class TestJsonlSink:
    def test_round_trip_exactly_what_was_emitted(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog("master", path=path, ring_size=None)
        emitted = [
            log.emit("dataset.submitted", dataset_id="ds1"),
            log.emit("task.started", dataset_id="ds1", task_index=0),
            log.emit("task.committed", dataset_id="ds1", task_index=0),
        ]
        log.close()
        assert read_jsonl(path) == emitted

    def test_each_event_is_one_complete_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog("serial", path=path)
        log.emit("a")
        log.emit("b")
        log.close()
        with open(path) as f:
            lines = f.read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line parses on its own

    def test_flushed_without_close(self, tmp_path):
        """A crash (no close) loses nothing already emitted."""
        path = str(tmp_path / "events.jsonl")
        log = EventLog("serial", path=path)
        log.emit("survives")
        # Deliberately no close(): the line must already be on disk.
        assert [e["name"] for e in read_jsonl(path)] == ["survives"]
        log.close()

    def test_truncated_final_line_dropped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog("serial", path=path)
        log.emit("kept", i=1)
        log.emit("kept", i=2)
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 3, "t": 1.0, "name": "torn')  # crash mid-write
        events = read_jsonl(path)
        assert [e["fields"]["i"] for e in events] == [1, 2]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as f:
            f.write('{"seq": 1, "name": "ok", "t": 0.0}\n')
            f.write("not json\n")
            f.write('{"seq": 2, "name": "ok", "t": 1.0}\n')
        with pytest.raises(ValueError, match="malformed event line"):
            read_jsonl(path)

    def test_empty_file_reads_empty(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        open(path, "w").close()
        assert read_jsonl(path) == []

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "events.jsonl")
        log = EventLog("serial", path=path)
        log.emit("e")
        log.close()
        assert os.path.exists(path)

    def test_two_processes_share_one_file(self, tmp_path):
        """Appended interleaved writes from two logs (as slaves sharing
        a tmpdir do): per-pid sequence order is still reconstructable."""
        path = str(tmp_path / "events.jsonl")
        a = EventLog("slave", path=path, pid=111)
        b = EventLog("slave", path=path, pid=222)
        a.emit("e")
        b.emit("e")
        a.emit("e")
        b.emit("e")
        a.close()
        b.close()
        events = read_jsonl(path)
        assert len(events) == 4
        for pid in (111, 222):
            seqs = [e["seq"] for e in events if e["pid"] == pid]
            assert seqs == sorted(seqs) == [1, 2]

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog("serial", path=str(tmp_path / "e.jsonl"))
        log.close()
        log.close()


class TestDisabledPath:
    """With no consumer, the hot path is one attribute check."""

    def test_events_none_by_default(self):
        assert Observability().events is None

    def test_configure_without_flags_stays_disabled(self):
        class Opts:
            event_log = None
            trace = None

        obs = Observability()
        obs.configure_from_opts(Opts())
        assert obs.events is None
        obs.configure_from_opts(None)
        assert obs.events is None

    def test_configure_enables_on_either_flag(self, tmp_path):
        class Opts:
            event_log = str(tmp_path / "e.jsonl")
            trace = None

        obs = Observability()
        obs.configure_from_opts(Opts())
        assert obs.events is not None
        obs.events.close()

    def test_trace_flag_requests_unbounded_ring(self):
        class Opts:
            event_log = None
            trace = "trace.json"

        obs = Observability()
        obs.configure_from_opts(Opts())
        assert obs.events._ring.maxlen is None

    def test_enable_events_idempotent(self):
        obs = Observability()
        assert obs.enable_events() is obs.enable_events()


class TestEmitAnchored:
    def make_batch(self):
        return [
            {"name": "task.phase", "offset": 0.1,
             "fields": {"phase": "fetch", "seconds": 0.1}},
            {"name": "task.phase", "offset": 0.5,
             "fields": {"phase": "map", "seconds": 0.4}},
        ]

    def test_offsets_reanchored_on_local_clock(self):
        log = EventLog("master")
        merged = log.emit_anchored(self.make_batch(), anchor_t=100.0,
                                   role="slave")
        assert merged == 2
        events = log.snapshot()
        assert [e["t"] for e in events] == [100.1, 100.5]
        assert [e["seq"] for e in events] == [1, 2]

    def test_default_pid_is_local_log_pid(self):
        """Merged events land on the coordinator's trace lane: the
        local pid, not the remote one (remote clocks are skewed; remote
        pids would split one worker's task across two lanes)."""
        log = EventLog("master", pid=777)
        log.emit_anchored(self.make_batch(), anchor_t=0.0, role="slave")
        assert all(e["pid"] == 777 for e in log.snapshot())

    def test_explicit_pid_honored(self):
        log = EventLog("master", pid=777)
        log.emit_anchored(self.make_batch(), anchor_t=0.0, role="slave",
                          pid=555)
        assert all(e["pid"] == 555 for e in log.snapshot())

    def test_extra_fields_attached(self):
        log = EventLog("master")
        log.emit_anchored(self.make_batch(), anchor_t=0.0, role="slave",
                          dataset_id="ds1", task_index=2, slave=1)
        for event in log.snapshot():
            assert event["fields"]["dataset_id"] == "ds1"
            assert event["fields"]["task_index"] == 2
            assert event["fields"]["slave"] == 1
            assert event["role"] == "slave"

    def test_garbage_entries_skipped(self):
        log = EventLog("master")
        batch = [
            {"offset": 0.1},  # no name
            {"name": "ok", "offset": "not-a-number"},
            {"name": "ok", "offset": 0.2},
        ]
        assert log.emit_anchored(batch, anchor_t=0.0, role="slave") == 1

    def test_merged_events_reach_the_jsonl_sink(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog("master", path=path)
        log.emit_anchored(self.make_batch(), anchor_t=5.0, role="worker")
        log.close()
        assert [e["t"] for e in read_jsonl(path)] == [5.1, 5.5]


class TestConcurrentEmission:
    def test_parallel_emitters_never_lose_or_duplicate_seq(self):
        log = EventLog("serial", ring_size=None)
        n_threads, per_thread = 8, 250

        def hammer():
            for _ in range(per_thread):
                log.emit("e")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = sorted(e["seq"] for e in log.snapshot())
        assert seqs == list(range(1, n_threads * per_thread + 1))

    def test_parallel_emitters_with_jsonl_sink(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog("serial", path=path, ring_size=None)

        def hammer():
            for _ in range(100):
                log.emit("e")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        events = read_jsonl(path)
        assert sorted(e["seq"] for e in events) == list(range(1, 401))


def make_span(include_all_marks=True):
    span = TaskSpan("ds1", 0)
    span.mark("queued", timestamp=10.0)
    span.mark("started", timestamp=10.2)
    if include_all_marks:
        span.mark("map", timestamp=10.7)
        span.mark("serialize", timestamp=10.8)
        span.mark("transfer", timestamp=10.9)
    span.mark("committed", timestamp=11.0)
    return span


class TestSpanPhaseMarks:
    def test_executor_view_includes_fetch(self):
        phases = span_phase_marks(make_span(), include_fetch=True)
        assert [p["phase"] for p in phases] == [
            "fetch", "map", "serialize", "transfer",
        ]
        fetch = phases[0]
        assert fetch["offset"] == pytest.approx(0.2)
        assert fetch["seconds"] == pytest.approx(0.2)

    def test_coordinator_view_skips_fetch(self):
        """queued->started on a coordinator is scheduler wait, not work."""
        phases = span_phase_marks(make_span(), include_fetch=False)
        assert [p["phase"] for p in phases] == ["map", "serialize", "transfer"]
        assert phases[0]["seconds"] == pytest.approx(0.5)

    def test_offsets_relative_to_first_mark(self):
        phases = span_phase_marks(make_span(), include_fetch=True)
        assert phases[-1]["offset"] == pytest.approx(0.9)

    def test_span_without_phase_marks_yields_fetch_only(self):
        phases = span_phase_marks(
            make_span(include_all_marks=False), include_fetch=True
        )
        assert [p["phase"] for p in phases] == ["fetch"]


class TestPiggyback:
    def test_batch_shape(self):
        batch = piggyback_events_from_span(make_span())
        assert all(e["name"] == "task.phase" for e in batch)
        assert [e["fields"]["phase"] for e in batch] == [
            "fetch", "map", "serialize", "transfer",
        ]

    def test_round_trip_through_emit_anchored(self):
        """The slave->master path end to end: offsets from the remote
        span re-anchor at the master's own dispatch timestamp."""
        batch = piggyback_events_from_span(make_span())
        master = EventLog("master")
        master.emit_anchored(batch, anchor_t=500.0, role="slave",
                             dataset_id="ds1", task_index=0)
        times = [e["t"] for e in master.snapshot()]
        assert times == pytest.approx([500.2, 500.7, 500.8, 500.9])
