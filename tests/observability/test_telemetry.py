"""The cluster telemetry plane: health sampling, the master-side
time-series store, shuffle-skew accounting, straggler scoring, the
Prometheus/dashboard renderers, and the offline analyzer.

Everything here runs on synthetic data with injected clocks — the
end-to-end piggyback paths are covered by the integration suites; these
tests pin the math and the wire-shape contracts.
"""

import json
import re

import pytest

from repro.observability import Observability
from repro.observability.analyze import (
    analyze,
    critical_path,
    main as analyze_main,
    slave_utilization,
)
from repro.observability.skew import SkewTracker, gini, max_over_median
from repro.observability.telemetry import (
    HealthSampler,
    StragglerScorer,
    Telemetry,
    TimeSeriesStore,
    render_dashboard,
    render_prometheus,
    running_median,
    sample_health,
    telemetry_from_opts,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestHealthSampler:
    def test_sample_health_sanity(self, tmp_path):
        sample = sample_health(str(tmp_path))
        assert sample["t"] > 0
        assert sample["cpu_seconds"] >= 0.0
        # Sparse keys: whatever is present must be a positive float.
        for key in ("rss_bytes", "open_fds", "disk_free_bytes"):
            if key in sample:
                assert sample[key] > 0

    def test_throttle_window(self):
        clock = FakeClock()
        sampler = HealthSampler(interval=5.0, clock=clock)
        assert sampler.maybe_sample() is not None
        clock.advance(4.9)
        assert sampler.maybe_sample() is None
        clock.advance(0.2)
        assert sampler.maybe_sample() is not None

    def test_task_throughput_from_counter_deltas(self):
        clock = FakeClock()
        completed = [0.0]
        sampler = HealthSampler(
            interval=1.0, task_counter=lambda: completed[0], clock=clock
        )
        first = sampler.sample()
        assert first["tasks_completed"] == 0.0
        assert "task_throughput" not in first  # no previous sample
        completed[0] = 10.0
        clock.advance(2.0)
        second = sampler.sample()
        assert second["tasks_completed"] == 10.0
        assert second["task_throughput"] == pytest.approx(5.0)

    def test_broken_task_counter_degrades_gracefully(self):
        def broken():
            raise RuntimeError("torn down")

        sampler = HealthSampler(task_counter=broken)
        sample = sampler.sample()
        assert "tasks_completed" not in sample
        assert sample["cpu_seconds"] >= 0.0


class TestTimeSeriesStore:
    def test_same_slot_samples_merge(self):
        store = TimeSeriesStore(interval=5.0)
        store.record("slave-1", {"t": 100.0, "cpu_seconds": 1.0})
        store.record("slave-1", {"t": 103.0, "rss_bytes": 7.0})
        (entry,) = store.series()["slave-1"]
        assert entry["cpu_seconds"] == 1.0
        assert entry["rss_bytes"] == 7.0
        store.record("slave-1", {"t": 106.0, "cpu_seconds": 2.0})
        assert len(store.series()["slave-1"]) == 2

    def test_ring_bounds_memory(self):
        store = TimeSeriesStore(interval=1.0, capacity=10)
        for i in range(100):
            store.record("slave-1", {"t": float(i), "cpu_seconds": float(i)})
        series = store.series()["slave-1"]
        assert len(series) == 10
        assert series[-1]["cpu_seconds"] == 99.0
        assert series[0]["cpu_seconds"] == 90.0

    def test_piggyback_merge_across_two_slaves(self):
        """Two fake slaves' samples and ping RTTs land in distinct,
        independently downsampled series — the master-side merge."""
        telemetry = Telemetry(role="master", interval=5.0)
        telemetry.record_remote("slave-1", {"t": 10.0, "cpu_seconds": 1.0})
        telemetry.record_remote("slave-2", {"t": 10.0, "cpu_seconds": 9.0})
        telemetry.record_remote("slave-1", None, rtt_seconds=0.002)
        snapshot = telemetry.snapshot()
        assert set(snapshot["series"]) >= {"slave-1", "slave-2"}
        assert snapshot["latest"]["slave-2"]["cpu_seconds"] == 9.0
        assert snapshot["latest"]["slave-1"]["rtt_seconds"] == 0.002
        # The coordinator samples itself too (non-empty own series).
        assert snapshot["series"]["master"]
        assert snapshot["version"] == 1

    def test_empty_record_is_a_noop(self):
        store = TimeSeriesStore()
        store.record("slave-1", None)
        assert len(store) == 0


class TestStragglerScorer:
    def test_slow_task_flagged_against_running_median(self):
        clock = FakeClock()
        scorer = StragglerScorer(factor=1.5, clock=clock)
        # Three siblings finish in 1s each; one task keeps running.
        for index in range(3):
            scorer.task_started("ds", index, slave_id=1)
            clock.advance(1.0)
            scorer.task_finished("ds", index)
        scorer.task_started("ds", 3, slave_id=2)
        clock.advance(1.4)
        assert scorer.candidates() == []  # 1.4 <= 1.5 * median(1.0)
        clock.advance(0.2)
        (cand,) = scorer.candidates()
        assert cand["dataset_id"] == "ds"
        assert cand["task_index"] == 3
        assert cand["slave"] == 2
        assert cand["median_seconds"] == pytest.approx(1.0)
        assert cand["ratio"] == pytest.approx(1.6)
        assert cand["first_flag"] is True
        # Re-polling reports the candidate again but not as a first flag.
        (again,) = scorer.candidates()
        assert again["first_flag"] is False
        assert scorer.flagged_total == 1

    def test_all_equal_distribution_flags_nothing_on_time(self):
        clock = FakeClock()
        scorer = StragglerScorer(factor=1.5, clock=clock)
        for index in range(4):
            scorer.task_started("ds", index)
            clock.advance(2.0)
            scorer.task_finished("ds", index)
        scorer.task_started("ds", 9)
        clock.advance(2.0)  # exactly the median: not a straggler
        assert scorer.candidates() == []

    def test_single_completed_sample_is_the_median(self):
        clock = FakeClock()
        scorer = StragglerScorer(factor=2.0, clock=clock)
        scorer.task_started("ds", 0)
        clock.advance(1.0)
        scorer.task_finished("ds", 0)
        scorer.task_started("ds", 1)
        clock.advance(2.5)
        (cand,) = scorer.candidates()
        assert cand["median_seconds"] == pytest.approx(1.0)

    def test_no_completions_means_no_candidates(self):
        clock = FakeClock()
        scorer = StragglerScorer(clock=clock)
        scorer.task_started("ds", 0)
        clock.advance(1000.0)
        assert scorer.candidates() == []

    def test_abandoned_task_never_poisons_the_distribution(self):
        clock = FakeClock()
        scorer = StragglerScorer(factor=1.5, clock=clock)
        scorer.task_started("ds", 0)
        clock.advance(50.0)
        scorer.task_abandoned("ds", 0)
        scorer.task_finished("ds", 0)  # late finish of an abandoned task
        scorer.task_started("ds", 1)
        clock.advance(1.0)
        scorer.task_finished("ds", 1)
        scorer.task_started("ds", 2)
        clock.advance(1.4)
        assert scorer.candidates() == []  # median is 1.0, not 50-tainted

    def test_forget_dataset_clears_state(self):
        clock = FakeClock()
        scorer = StragglerScorer(clock=clock)
        scorer.task_started("ds", 0)
        clock.advance(1.0)
        scorer.task_finished("ds", 0)
        scorer.task_started("ds", 1)
        clock.advance(100.0)
        assert scorer.candidates()
        scorer.forget_dataset("ds")
        assert scorer.candidates() == []

    def test_running_median(self):
        assert running_median([3.0]) == 3.0
        assert running_median([1.0, 3.0]) == 2.0
        assert running_median([5.0, 1.0, 3.0]) == 3.0


class TestSchedulerStragglerIntegration:
    """The scheduler feeds the scorer through its normal transitions:
    a seeded skew (one task much slower than its siblings) must surface
    through scheduler.straggler_candidates()."""

    def make_scheduler(self, clock, ntasks=4):
        from repro.runtime.scheduler import ScheduledDataset, Scheduler

        scheduler = Scheduler()
        scheduler.straggler_scorer = StragglerScorer(
            factor=1.5, clock=clock
        )
        scheduler.add_slave(1)
        scheduler.add_slave(2)
        scheduler.add_dataset(
            ScheduledDataset("ds", ntasks, "g", "input")
        )
        scheduler.mark_input_complete("input")
        return scheduler

    def test_slow_task_surfaces_via_scheduler(self):
        clock = FakeClock()
        scheduler = self.make_scheduler(clock)
        slow = scheduler.next_task(2)  # assigned first, finishes never
        for _ in range(3):
            task = scheduler.next_task(1)
            clock.advance(1.0)
            scheduler.task_done(1, task)
        clock.advance(3.0)
        (cand,) = scheduler.straggler_candidates()
        assert (cand["dataset_id"], cand["task_index"]) == slow
        assert cand["ratio"] > 1.5

    def test_failed_task_is_abandoned_not_scored(self):
        clock = FakeClock()
        scheduler = self.make_scheduler(clock, ntasks=2)
        task = scheduler.next_task(1)
        clock.advance(50.0)
        scheduler.task_failed(1, task)
        other = scheduler.next_task(2)
        clock.advance(1.0)
        scheduler.task_done(2, other)
        # The failed 50s attempt left no duration sample behind.
        durations = scheduler.straggler_scorer._durations["ds"]
        assert durations == [1.0]

    def test_no_scorer_means_empty_candidates(self):
        from repro.runtime.scheduler import Scheduler

        assert Scheduler().straggler_candidates() == []


class TestSkew:
    def test_gini_uniform_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_gini_concentrated_is_high(self):
        value = gini([0.0, 0.0, 0.0, 100.0])
        assert value == pytest.approx(0.75)

    def test_gini_undefined_cases(self):
        assert gini([]) is None
        assert gini([0.0, 0.0]) is None

    def test_max_over_median(self):
        assert max_over_median([1.0, 1.0, 4.0]) == pytest.approx(4.0)
        assert max_over_median([]) is None
        assert max_over_median([0.0, 0.0]) is None

    def test_tracker_accumulates_across_tasks(self):
        tracker = SkewTracker()
        # Two map tasks each emit into splits 0 and 1; split 1 is fat.
        tracker.record_emitted("ds", [(0, 10, 100.0), (1, 10, 100.0)])
        tracker.record_emitted("ds", [(0, 10, 100.0), (1, 90, 900.0)])
        summary = tracker.summary()["ds"]
        assert summary["buckets"] == 2
        assert summary["bytes_total"] == pytest.approx(1200.0)
        assert summary["bytes_max"] == pytest.approx(1000.0)
        assert summary["max_over_median_bytes"] == pytest.approx(
            1000.0 / 600.0
        )
        assert summary["gini_bytes"] > 0.0

    def test_fetched_side_totals_attach(self):
        tracker = SkewTracker()
        tracker.record_emitted("ds", [(0, 1, 10.0)])
        tracker.record_fetched("ds", 0, 10.0)
        tracker.record_fetched("other", 3, 44.0)
        summary = tracker.summary()
        assert summary["ds"]["fetched_bytes_total"] == pytest.approx(10.0)
        # Fetch-only datasets still appear, with a zeroed emit side.
        assert summary["other"]["buckets"] == 0
        assert summary["other"]["fetched_bytes_total"] == pytest.approx(44.0)

    def test_forget_dataset(self):
        tracker = SkewTracker()
        tracker.record_emitted("ds", [(0, 1, 10.0)])
        tracker.forget_dataset("ds")
        assert tracker.summary() == {}
        assert len(tracker) == 0

    def test_malformed_triples_are_skipped(self):
        tracker = SkewTracker()
        tracker.record_emitted("ds", [(0, 1, 10.0), ("x", "y"), None])
        assert tracker.summary()["ds"]["buckets"] == 1


class TestTelemetryFromOpts:
    class Opts:
        telemetry = "on"
        telemetry_interval = 2.0
        straggler_factor = 3.0

    def test_off_returns_none(self):
        opts = self.Opts()
        opts.telemetry = "off"
        assert telemetry_from_opts(opts, role="serial") is None

    def test_on_builds_configured_bundle(self):
        bundle = telemetry_from_opts(self.Opts(), role="serial")
        assert bundle.interval == 2.0
        assert bundle.straggler_factor == 3.0
        assert bundle.role == "serial"

    def test_observability_wiring(self, tmp_path):
        class Opts:
            telemetry = "on"
            tmpdir = str(tmp_path)

        obs = Observability(role="serial")
        obs.enable_telemetry(Opts(), rundir=str(tmp_path))
        assert obs.telemetry is not None
        # The task counter is live: registry increments feed throughput.
        obs.registry.counter("tasks.completed").inc(3)
        sample = obs.telemetry.sampler.sample()
        assert sample["tasks_completed"] == 3.0

    def test_observability_off_keeps_attribute_none(self):
        class Opts:
            telemetry = "off"

        obs = Observability(role="serial")
        obs.enable_telemetry(Opts())
        assert obs.telemetry is None


_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9].*$"
)


def assert_prometheus_text(body):
    """Structural check of the text exposition format: every line is a
    comment or a sample, and every # TYPE names each metric once."""
    typed = []
    for line in body.strip().splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4 and parts[3] in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ), line
            typed.append(parts[2])
        elif line.startswith("#"):
            continue
        else:
            assert _PROM_LINE.match(line), f"bad sample line: {line!r}"
    assert len(typed) == len(set(typed)), "duplicate # TYPE lines"
    return typed


class TestRenderers:
    class FakeBackend:
        def __init__(self):
            self.observability = Observability(role="master")
            self.observability.registry.counter("tasks.completed").inc(7)
            self._telemetry = Telemetry(role="master")
            self._telemetry.record_remote(
                "slave-1",
                {"t": 1.0, "cpu_seconds": 2.5, "rss_bytes": 1024.0},
                rtt_seconds=0.001,
            )
            self._telemetry.skew.record_emitted(
                "ds", [(0, 1, 10.0), (1, 9, 90.0)]
            )

        def status(self):
            return {
                "role": "master",
                "tasks": {"total": 4, "done": 2, "running": 1},
                "slaves": [
                    {"id": 1, "alive": True, "busy": True,
                     "address": "127.0.0.1:1"},
                    {"id": 2, "alive": False, "busy": False,
                     "address": "127.0.0.1:2"},
                ],
                "datasets": [
                    {"id": "ds", "complete": False, "error": None,
                     "progress": 0.5},
                ],
            }

        def telemetry(self):
            return self._telemetry.snapshot(
                stragglers=[{
                    "dataset_id": "ds", "task_index": 3, "slave": 2,
                    "elapsed_seconds": 9.0, "median_seconds": 3.0,
                    "ratio": 3.0, "first_flag": True,
                }],
                flagged_total=1,
            )

    def test_prometheus_exposition_is_well_formed(self):
        body = render_prometheus(self.FakeBackend())
        typed = assert_prometheus_text(body)
        assert "mrs_up" in typed
        assert 'mrs_slave_up{slave="slave-1"} 1' in body
        assert 'mrs_slave_up{slave="slave-2"} 0' in body
        assert 'mrs_slave_cpu_seconds_total{slave="slave-1"} 2.5' in body
        assert 'mrs_dataset_progress{dataset="ds"} 0.5' in body
        assert 'mrs_skew_gini{dataset="ds"}' in body
        assert "mrs_straggler_candidates 1" in body
        assert "mrs_stragglers_flagged_total 1" in body
        assert "mrs_tasks_completed_total 7" in body

    def test_prometheus_handles_mp_status_shape(self):
        class MpBackend:
            observability = None

            def status(self):
                return {
                    "role": "multiprocess",
                    "tasks": {"total": 2, "done": 2, "running": 0},
                    "datasets": {"ds": "complete", "bad": "error"},
                }

        body = render_prometheus(MpBackend())
        assert_prometheus_text(body)
        assert 'mrs_dataset_complete{dataset="ds"} 1' in body
        assert 'mrs_dataset_complete{dataset="bad"} 0' in body

    def test_dashboard_renders_all_panels(self):
        body = render_dashboard(self.FakeBackend())
        assert body.startswith("<!DOCTYPE html>")
        assert "slave-1" in body and "slave-2" in body
        assert "Shuffle skew" in body and "Stragglers" in body
        assert "ds[3]" in body  # the straggler row
        assert "http-equiv='refresh'" in body

    def test_dashboard_survives_empty_backend(self):
        class Empty:
            observability = None

            def status(self):
                return {}

        body = render_dashboard(Empty())
        assert "no slaves signed in" in body
        assert "no datasets yet" in body


class TestAnalyze:
    def rows(self):
        def committed(ds, index, end, seconds, slave):
            return {
                "seq": index + 1, "t": end, "name": "task.committed",
                "pid": 1, "role": "master",
                "fields": {"dataset_id": ds, "task_index": index,
                           "seconds": seconds, "slave": slave},
            }

        # Map wave (parallel on 2 slaves), then one reduce task that
        # could only start after the last map committed.
        return [
            committed("job-1.map", 0, 2.0, 2.0, 1),
            committed("job-1.map", 1, 3.0, 3.0, 2),
            committed("job-1.reduce", 0, 5.0, 2.0, 1),
            committed("job-2.map", 0, 4.0, 1.0, 1),
        ]

    def test_jobs_are_grouped_by_namespace(self):
        report = analyze(self.rows())
        assert set(report["jobs"]) == {"job-1", "job-2"}
        assert report["jobs"]["job-1"]["tasks"] == 3
        assert report["jobs"]["job-2"]["tasks"] == 1

    def test_critical_path_walks_back_greedily(self):
        report = analyze(self.rows())
        chain = report["jobs"]["job-1"]["critical_path"]["chain"]
        # reduce (ends 5, starts 3) <- map[1] (ends 3): the 3s map and
        # the reduce bound the wall; map[0] is off-path.
        assert [(h["dataset_id"], h["task_index"]) for h in chain] == [
            ("job-1.map", 1), ("job-1.reduce", 0),
        ]
        assert report["jobs"]["job-1"]["critical_path"][
            "seconds"
        ] == pytest.approx(5.0)
        assert report["jobs"]["job-1"]["wall_seconds"] == pytest.approx(5.0)

    def test_slave_utilization_over_job_window(self):
        tasks = [
            {"start": 0.0, "end": 2.0, "seconds": 2.0, "slave": 1,
             "dataset_id": "d", "task_index": 0},
            {"start": 0.0, "end": 4.0, "seconds": 4.0, "slave": 2,
             "dataset_id": "d", "task_index": 1},
        ]
        util = slave_utilization(tasks)
        assert util["1"]["utilization"] == pytest.approx(0.5)
        assert util["2"]["utilization"] == pytest.approx(1.0)
        assert util["1"]["tasks"] == 1

    def test_critical_path_empty(self):
        assert critical_path([]) == []

    def test_cli_text_and_json(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            "\n".join(json.dumps(r) for r in self.rows()) + "\n"
        )
        assert analyze_main([str(log)]) == 0
        out = capsys.readouterr().out
        assert "== job-1 ==" in out and "critical path" in out
        assert analyze_main([str(log), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert "job-1" in report["jobs"]

    def test_cli_missing_file(self, tmp_path, capsys):
        assert analyze_main([str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err
