"""Telemetry routes on the job-server control surface.

A JobServer with no slaves and no jobs must still serve a well-formed
Prometheus ``/metrics`` exposition and a ``/dashboard`` page — the
"dashboard works before the first submission" contract.
"""

import urllib.request

import pytest

from repro.core import options as options_mod
from repro.service.registry import ProgramRegistry
from repro.service.server import JobServer
from tests.observability.test_telemetry import assert_prometheus_text


@pytest.fixture
def server(tmp_path):
    opts, _ = options_mod.parse_options(
        None, ["--mrs", "serve", "--mrs-tmpdir", str(tmp_path)]
    )
    srv = JobServer(ProgramRegistry(), opts)
    try:
        yield srv
    finally:
        srv.shutdown(drain=False, timeout=5)


def fetch(server, path):
    url = f"{server.control_url}{path}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers["Content-Type"], resp.read().decode()


def test_metrics_is_prometheus_text(server):
    code, ctype, body = fetch(server, "/metrics")
    assert code == 200
    assert ctype.startswith("text/plain")
    typed = assert_prometheus_text(body)
    assert "mrs_up" in typed
    assert "mrs_tasks_total" in typed
    # Service-mode registry metrics flatten into the exposition too.
    assert "mrs_jobs_submitted_total 0" in body


def test_metrics_json_format_still_served(server):
    import json

    url = f"{server.control_url}/metrics?format=json"
    with urllib.request.urlopen(url, timeout=10) as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"] == "application/json"
        payload = json.loads(resp.read())
    assert payload["role"] == "master"


def test_dashboard_renders_without_job_data(server):
    code, ctype, body = fetch(server, "/dashboard")
    assert code == 200
    assert ctype.startswith("text/html")
    assert "mrs cluster dashboard" in body
    assert "no jobs submitted" in body
    assert "no slaves signed in" in body
