"""Graceful SIGTERM/SIGINT handling: util unit tests plus real
subprocess masters/servers that must drain, flush, and exit 0."""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.util.signals import GracefulExit, install_graceful_exit, restore


class TestSignalsUtil:
    def test_sigterm_raises_graceful_exit_in_main_thread(self):
        previous = install_graceful_exit()
        try:
            with pytest.raises(GracefulExit) as excinfo:
                os.kill(os.getpid(), signal.SIGTERM)
                # The handler fires on return from kill; the sleep is
                # just a scheduling point for exotic platforms.
                time.sleep(5)
            assert excinfo.value.signum == signal.SIGTERM
        finally:
            restore(previous)

    def test_second_signal_uses_default_disposition(self):
        previous = install_graceful_exit()
        try:
            with pytest.raises(GracefulExit):
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)
            # The first delivery restored the previous dispositions.
            assert signal.getsignal(signal.SIGTERM) is previous[signal.SIGTERM]
        finally:
            restore(previous)

    def test_install_off_main_thread_is_noop(self):
        result = []
        thread = threading.Thread(
            target=lambda: result.append(install_graceful_exit())
        )
        thread.start()
        thread.join()
        assert result == [None]
        restore(None)  # must also tolerate the no-op token


def _spawn(code, *, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(cwd, "src")
    return subprocess.Popen(
        [sys.executable, "-c", code],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


class TestGracefulProcesses:
    def test_master_sigterm_flushes_and_exits_zero(self, tmp_path):
        """A master blocked waiting for slaves drains on SIGTERM: the
        metrics report is still written and the exit status is 0."""
        infile = tmp_path / "in.txt"
        infile.write_text("words to count\n")
        metrics = tmp_path / "metrics.json"
        code = (
            "import sys\n"
            "from repro.core.main import main\n"
            "from repro.apps.wordcount import WordCountCombined\n"
            "print('booted', flush=True)\n"
            "sys.exit(main(WordCountCombined, ["
            f"'--mrs', 'master', '--mrs-tmpdir', {str(tmp_path / 'run')!r}, "
            f"'--mrs-metrics-json', {str(metrics)!r}, "
            f"{str(infile)!r}, {str(tmp_path / 'out')!r}]))\n"
        )
        process = _spawn(code, cwd=_repo_root())
        try:
            assert process.stdout.readline().strip() == "booted"
            time.sleep(1.0)  # let it reach the no-slaves wait
            process.send_signal(signal.SIGTERM)
            rc = process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert rc == 0
        assert metrics.exists(), "graceful exit must flush metrics JSON"

    def test_serve_sigterm_exits_zero(self, tmp_path):
        """A job server shuts its whole stack down cleanly on SIGTERM."""
        code = (
            "import sys\n"
            "from repro.core.main import main\n"
            "from repro.apps.wordcount import WordCountCombined\n"
            "sys.exit(main(WordCountCombined, ["
            f"'--mrs', 'serve', '--mrs-tmpdir', {str(tmp_path / 'run')!r}"
            "]))\n"
        )
        process = _spawn(code, cwd=_repo_root())
        try:
            banner = process.stdout.readline()
            assert banner.startswith("mrs job server:")
            process.send_signal(signal.SIGTERM)
            rc = process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert rc == 0
