"""JobServer integration: a warm server multiplexing real slaves.

One module-scoped server with two slave subprocesses backs most tests
here — exactly the service-mode promise (job N+1 pays no startup), and
it keeps the suite fast.  Outputs are compared byte-identical against
serial runs of the same programs.
"""

import os
import threading
import time

import pytest

from repro.apps.wordcount import WordCountCombined
from repro.core import options as options_mod
from repro.core.job import Job
from repro.core.main import run_program
from repro.service import submit as submit_mod
from repro.service.registry import ProgramRegistry
from repro.service.server import JobServer

TERMINAL = ("done", "failed", "canceled")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    base = tmp_path_factory.mktemp("service_run")
    opts, _ = options_mod.parse_options(
        None, ["--mrs", "serve", "--mrs-tmpdir", str(base)]
    )
    registry = ProgramRegistry()
    registry.register("wordcount", WordCountCombined)
    registry.register("failing", "tests.integration.programs:FailingMap")
    registry.register("slow", "tests.integration.programs:SlowCount")
    srv = JobServer(registry, opts)
    try:
        assert srv.spawn_slaves(2) >= 2
        yield srv
    finally:
        srv.shutdown(drain=True, timeout=60)


def get(server, path):
    return submit_mod._request("GET", f"{server.control_url}{path}")


def submit(server, program, args):
    return submit_mod._request(
        "POST",
        f"{server.control_url}/jobs",
        payload={"program": program, "args": args},
    )


def wait_terminal(server, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = get(server, f"/jobs/{job_id}")
        if view["state"] in TERMINAL:
            return view
        time.sleep(0.1)
    raise AssertionError(f"{job_id} not terminal after {timeout}s")


def output_lines(outdir):
    """Sorted concatenation of the visible output lines — the
    byte-identity witness used across implementations."""
    lines = []
    for name in sorted(os.listdir(outdir)):
        if name.startswith("."):
            continue
        with open(os.path.join(outdir, name), "rb") as f:
            lines += f.read().splitlines()
    return sorted(lines)


def make_input(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def serial_lines(tmp_path, infile, tag):
    outdir = tmp_path / f"serial_{tag}"
    run_program(WordCountCombined, [infile, str(outdir)], impl="serial")
    return output_lines(str(outdir))


class TestSingleJob:
    def test_byte_identical_vs_serial(self, server, tmp_path):
        infile = make_input(
            tmp_path, "in.txt", "the quick brown fox the dog\n" * 40
        )
        outdir = tmp_path / "out"
        view = submit(server, "wordcount", [infile, str(outdir)])
        final = wait_terminal(server, view["id"])
        assert final["state"] == "done"
        got = output_lines(str(outdir))
        assert got and got == serial_lines(tmp_path, infile, "one")

    def test_view_carries_job_slice(self, server, tmp_path):
        infile = make_input(tmp_path, "in2.txt", "alpha beta beta\n" * 10)
        outdir = tmp_path / "out2"
        view = submit(server, "wordcount", [infile, str(outdir)])
        final = wait_terminal(server, view["id"])
        assert final["job_id"] == view["id"]
        assert final["latency_seconds"] > 0
        # Released after completion: the per-job registry survives...
        counters = final["metrics"].get("counters", {})
        assert counters.get("tasks.completed", 0) >= 1
        # ...but the datasets themselves have been forgotten.
        assert final["datasets"] == []

    def test_unknown_program_is_404(self, server):
        with pytest.raises(submit_mod.SubmitError, match="404"):
            submit(server, "nope", [])

    def test_unknown_job_is_404(self, server):
        with pytest.raises(submit_mod.SubmitError, match="404"):
            get(server, "/jobs/job-999999")


class TestConcurrency:
    N_JOBS = 8

    def test_eight_concurrent_jobs_byte_identical(self, server, tmp_path):
        """The acceptance bar: a warm server sustains >= 8 concurrent
        submissions, each output byte-identical to its serial run."""
        inputs, outdirs = [], []
        for i in range(self.N_JOBS):
            text = f"word{i} common word{i} unique{i}\n" * (10 + i)
            inputs.append(make_input(tmp_path, f"in_{i}.txt", text))
            outdirs.append(str(tmp_path / f"out_{i}"))

        views = [None] * self.N_JOBS
        errors = []

        def submit_one(i):
            try:
                view = submit(server, "wordcount", [inputs[i], outdirs[i]])
                views[i] = wait_terminal(server, view["id"])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append((i, exc))

        threads = [
            threading.Thread(target=submit_one, args=(i,))
            for i in range(self.N_JOBS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)
        assert not errors, errors
        assert all(v and v["state"] == "done" for v in views), views
        for i in range(self.N_JOBS):
            got = output_lines(outdirs[i])
            assert got == serial_lines(tmp_path, inputs[i], str(i)), (
                f"job {i} output diverged"
            )

    def test_failing_job_does_not_disturb_others(self, server, tmp_path):
        infile = make_input(tmp_path, "ok.txt", "solid ground\n" * 20)
        outdir = tmp_path / "ok_out"
        bad = submit(server, "failing", [])
        good = submit(server, "wordcount", [infile, str(outdir)])
        bad_final = wait_terminal(server, bad["id"])
        good_final = wait_terminal(server, good["id"])
        assert bad_final["state"] == "failed"
        # The driver sees the propagated dataset failure chain.
        assert "failed" in (bad_final["error"] or "")
        assert good_final["state"] == "done"
        assert output_lines(str(outdir)) == serial_lines(
            tmp_path, infile, "ok"
        )

    def test_cancel_running_job_releases_and_server_survives(
        self, server, tmp_path
    ):
        slow_out = tmp_path / "slow_out"
        view = submit(server, "slow", [str(slow_out)])
        job_id = view["id"]
        # Let it genuinely start before canceling.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            live = get(server, f"/jobs/{job_id}")
            if live["state"] in TERMINAL or (
                live["state"] == "running"
                and live.get("dispatched_tasks", 0) >= 1
            ):
                break
            time.sleep(0.05)
        result = submit_mod._request(
            "DELETE", f"{server.control_url}/jobs/{job_id}"
        )
        assert result["state"] in ("running", "canceled")
        final = wait_terminal(server, job_id)
        assert final["state"] == "canceled"
        # Mid-run cancel must not leak the job's run directories.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            leftovers = [
                name
                for name in os.listdir(server.backend.tmpdir)
                if name.startswith(f"{job_id}.")
            ]
            if not leftovers:
                break
            time.sleep(0.1)
        assert not leftovers, f"canceled job leaked run dirs: {leftovers}"
        # And the warm server keeps serving.
        infile = make_input(tmp_path, "after.txt", "still alive\n" * 10)
        outdir = tmp_path / "after_out"
        after = submit(server, "wordcount", [infile, str(outdir)])
        assert wait_terminal(server, after["id"])["state"] == "done"

    def test_listing_and_queue_state(self, server):
        listing = get(server, "/jobs")
        assert listing["max_concurrent"] >= 8
        assert "wordcount" in listing["programs"]
        assert listing["slaves"] >= 2
        assert all(j["state"] in TERMINAL for j in listing["jobs"])


class TestStatusReaders:
    def test_concurrent_readers_while_tasks_complete(self, server, tmp_path):
        """N reader threads hammer Job.status(), the backend's job
        slice, and the status/control HTTP surface while a job runs —
        no reader may ever see an exception or a torn view."""
        slow_out = tmp_path / "readers_out"
        view = submit(server, "slow", [str(slow_out)])
        job_id = view["id"]
        stop = threading.Event()
        failures = []
        job_facade = Job(server.backend)

        def read_loop(which):
            try:
                while not stop.is_set():
                    if which == 0:
                        snapshot = job_facade.status()
                        assert "tasks" in snapshot or snapshot == {}
                    elif which == 1:
                        server.backend.job_status(job_id)
                    elif which == 2:
                        get(server, "/status")
                    elif which == 3:
                        get(server, f"/jobs/{job_id}")
                    else:
                        get(server, "/jobs")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((which, exc))

        readers = [
            threading.Thread(target=read_loop, args=(i % 5,))
            for i in range(10)
        ]
        for reader in readers:
            reader.start()
        try:
            final = wait_terminal(server, job_id)
        finally:
            stop.set()
            for reader in readers:
                reader.join(10)
        assert not failures, failures
        assert final["state"] == "done"
        assert output_lines(str(slow_out))


class TestAuth:
    def test_mutating_requests_require_token(self, tmp_path):
        opts, _ = options_mod.parse_options(
            None,
            [
                "--mrs",
                "serve",
                "--mrs-tmpdir",
                str(tmp_path / "run"),
                "--mrs-auth-token",
                "sesame",
            ],
        )
        registry = ProgramRegistry()
        registry.register("wordcount", WordCountCombined)
        infile = make_input(tmp_path, "in.txt", "guarded words\n")
        srv = JobServer(registry, opts)
        try:
            url = f"{srv.control_url}/jobs"
            payload = {
                "program": "wordcount",
                "args": [infile, str(tmp_path / "out")],
            }
            with pytest.raises(submit_mod.SubmitError, match="401"):
                submit_mod._request("POST", url, payload=payload)
            with pytest.raises(submit_mod.SubmitError, match="401"):
                submit_mod._request(
                    "POST", url, payload=payload, token="wrong"
                )
            # Reads stay open; mutations need the token.
            assert submit_mod._request("GET", url)["jobs"] == []
            view = submit_mod._request(
                "POST", url, payload=payload, token="sesame"
            )
            with pytest.raises(submit_mod.SubmitError, match="401"):
                submit_mod._request("DELETE", f"{url}/{view['id']}")
            canceled = submit_mod._request(
                "DELETE", f"{url}/{view['id']}", token="sesame"
            )
            assert canceled["state"] in ("running", "canceled")
        finally:
            srv.shutdown(drain=False, timeout=5)


class TestSubmitClient:
    def test_end_to_end_cli(self, server, tmp_path, capsys):
        infile = make_input(tmp_path, "cli.txt", "client side words\n" * 5)
        outdir = tmp_path / "cli_out"
        rc = submit_mod.main(
            [
                "--server",
                server.control_url,
                "--poll-interval",
                "0.1",
                "wordcount",
                infile,
                str(outdir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.strip().startswith("job-")
        assert output_lines(str(outdir)) == serial_lines(
            tmp_path, infile, "cli"
        )

    def test_cli_list_and_status(self, server, capsys):
        assert submit_mod.main(
            ["--server", server.control_url, "--list"]
        ) == 0
        listing = capsys.readouterr().out
        assert '"jobs"' in listing

    def test_cli_usage_errors(self, capsys):
        assert submit_mod.main([]) == 2  # no server
        assert (
            submit_mod.main(["--server", "http://127.0.0.1:1"]) == 2
        )  # no program
