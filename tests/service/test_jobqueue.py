"""JobQueue admission: cap, FIFO order, cancel/finish bookkeeping."""

import pytest

from repro.service.jobqueue import JobQueue


class TestAdmission:
    def test_admits_up_to_cap_in_fifo_order(self):
        q = JobQueue(max_concurrent=2)
        for job in ("a", "b", "c"):
            q.submit(job)
        assert q.admit() == ["a", "b"]
        assert q.running() == ["a", "b"]
        assert q.queued() == ["c"]

    def test_finish_admits_oldest_waiter(self):
        q = JobQueue(max_concurrent=1)
        for job in ("a", "b", "c"):
            q.submit(job)
        assert q.admit() == ["a"]
        assert q.finish("a")
        assert q.admit() == ["b"]
        assert q.queued() == ["c"]

    def test_admit_is_idempotent_at_cap(self):
        q = JobQueue(max_concurrent=1)
        q.submit("a")
        q.submit("b")
        assert q.admit() == ["a"]
        assert q.admit() == []
        assert q.running() == ["a"]

    def test_single_job_flows_through(self):
        q = JobQueue(max_concurrent=8)
        q.submit("only")
        assert q.admit() == ["only"]
        assert q.finish("only")
        assert q.active == 0 and q.waiting == 0


class TestBookkeeping:
    def test_duplicate_submit_rejected(self):
        q = JobQueue()
        q.submit("a")
        with pytest.raises(ValueError):
            q.submit("a")
        q.admit()
        with pytest.raises(ValueError):
            q.submit("a")

    def test_finish_unknown_is_noop(self):
        q = JobQueue()
        assert not q.finish("ghost")

    def test_withdraw_only_removes_queued(self):
        q = JobQueue(max_concurrent=1)
        q.submit("a")
        q.submit("b")
        q.admit()
        assert not q.withdraw("a")  # running, not queued
        assert q.withdraw("b")
        assert q.queued() == []
        assert q.running() == ["a"]

    def test_counts(self):
        q = JobQueue(max_concurrent=2)
        for job in ("a", "b", "c", "d"):
            q.submit(job)
        q.admit()
        assert q.active == 2
        assert q.waiting == 2

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(max_concurrent=0)
