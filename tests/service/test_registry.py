"""Program registry: spec normalization, CLI registration, resolution."""

import pytest

from repro.apps.wordcount import WordCount, WordCountCombined
from repro.service.registry import ProgramRegistry, RegistryError, spec_for


class TestSpecFor:
    def test_class_becomes_module_spec(self):
        assert spec_for(WordCount) == "repro.apps.wordcount:WordCount"

    def test_string_spec_passes_through(self):
        assert spec_for("pkg.mod:Klass") == "pkg.mod:Klass"

    def test_string_without_colon_rejected(self):
        with pytest.raises(RegistryError):
            spec_for("pkg.mod.Klass")

    def test_main_module_class_rejected(self):
        class Local:
            pass

        Local.__module__ = "__main__"
        with pytest.raises(RegistryError):
            spec_for(Local)


class TestRegistry:
    def test_register_and_resolve(self):
        registry = ProgramRegistry()
        registry.register("wc", WordCount)
        assert "wc" in registry
        assert registry.spec("wc") == "repro.apps.wordcount:WordCount"
        assert registry.resolve("wc") is WordCount

    def test_unknown_name_lists_known(self):
        registry = ProgramRegistry()
        registry.register("wc", WordCount)
        with pytest.raises(RegistryError, match="wc"):
            registry.spec("nope")

    def test_from_opts_registers_main_class_and_flags(self):
        class Opts:
            register = [
                "kmeans=repro.apps.kmeans:KMeans",
                "wc2 = repro.apps.wordcount:WordCount",
            ]

        registry = ProgramRegistry.from_opts(WordCountCombined, Opts())
        assert registry.names() == ["kmeans", "wc2", "wordcountcombined"]
        assert (
            registry.spec("wordcountcombined")
            == "repro.apps.wordcount:WordCountCombined"
        )
        assert registry.resolve("wc2") is WordCount

    def test_from_opts_rejects_malformed_entry(self):
        class Opts:
            register = ["no-equals-sign"]

        with pytest.raises(RegistryError):
            ProgramRegistry.from_opts(None, Opts())

    def test_from_opts_without_program_class(self):
        class Opts:
            register = ["wc=repro.apps.wordcount:WordCount"]

        registry = ProgramRegistry.from_opts(None, Opts())
        assert registry.names() == ["wc"]
