"""Built-in HTTP data server."""

import urllib.error
import urllib.request

import pytest

from repro.comm.dataserver import DataServer


@pytest.fixture
def served_dir(tmp_path):
    (tmp_path / "bucket.bin").write_bytes(b"\x00\x01payload")
    sub = tmp_path / "ds1"
    sub.mkdir()
    (sub / "part.bin").write_bytes(b"nested")
    with DataServer(str(tmp_path)) as server:
        yield server, tmp_path


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


class TestDataServer:
    def test_serves_file(self, served_dir):
        server, root = served_dir
        assert fetch(server.url_for("bucket.bin")) == b"\x00\x01payload"

    def test_serves_nested_path(self, served_dir):
        server, _ = served_dir
        assert fetch(server.url_for("ds1/part.bin")) == b"nested"

    def test_url_for_absolute_path(self, served_dir):
        server, root = served_dir
        url = server.url_for(str(root / "bucket.bin"))
        assert fetch(url) == b"\x00\x01payload"

    def test_404_for_missing(self, served_dir):
        server, _ = served_dir
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"http://{server.host}:{server.port}/ghost.bin")
        assert excinfo.value.code == 404

    def test_path_escape_rejected(self, served_dir):
        server, _ = served_dir
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"http://{server.host}:{server.port}/../../etc/passwd")
        assert excinfo.value.code in (403, 404)

    def test_url_for_outside_root_rejected(self, served_dir):
        server, _ = served_dir
        with pytest.raises(ValueError):
            server.url_for("/etc/passwd")

    def test_directory_request_is_404(self, served_dir):
        server, _ = served_dir
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"http://{server.host}:{server.port}/ds1")
        assert excinfo.value.code == 404

    def test_url_quoting(self, served_dir):
        server, root = served_dir
        (root / "with space.bin").write_bytes(b"sp")
        assert fetch(server.url_for("with space.bin")) == b"sp"
