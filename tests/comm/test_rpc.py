"""XML-RPC control-plane wrappers."""

import threading

import pytest

from repro.comm.rpc import (
    RpcServer,
    format_address,
    parse_address,
    rpc_client,
)


class EchoHandler:
    def __init__(self):
        self.calls = []

    def rpc_echo(self, value):
        self.calls.append(value)
        return value

    def rpc_add(self, a, b):
        return a + b

    def rpc_none_roundtrip(self):
        return None

    def not_exposed(self):  # no rpc_ prefix
        return "secret"


@pytest.fixture
def server():
    handler = EchoHandler()
    with RpcServer(handler) as srv:
        yield srv, handler


class TestRpcServer:
    def test_ephemeral_port_assigned(self, server):
        srv, _ = server
        assert srv.port > 0

    def test_prefixed_methods_exposed(self, server):
        srv, _ = server
        client = rpc_client(srv.address)
        assert client.echo("hello") == "hello"
        assert client.add(2, 3) == 5

    def test_unprefixed_methods_hidden(self, server):
        srv, _ = server
        client = rpc_client(srv.address)
        with pytest.raises(Exception):
            client.not_exposed()

    def test_none_values_allowed(self, server):
        srv, _ = server
        assert rpc_client(srv.address).none_roundtrip() is None

    def test_dicts_and_lists_roundtrip(self, server):
        srv, _ = server
        payload = {"op": {"kind": "map", "splits": 2}, "urls": ["a", "b"]}
        assert rpc_client(srv.address).echo(payload) == payload

    def test_concurrent_calls(self, server):
        srv, handler = server
        errors = []

        def hammer(n):
            try:
                client = rpc_client(srv.address)
                for i in range(10):
                    assert client.add(n, i) == n + i
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_client_timeout_on_dead_server(self):
        handler = EchoHandler()
        srv = RpcServer(handler)
        address = srv.address
        srv.shutdown()
        client = rpc_client(address, timeout=0.5)
        with pytest.raises(Exception):
            client.echo("x")


class TestAddresses:
    def test_roundtrip(self):
        assert parse_address(format_address("1.2.3.4", 99)) == ("1.2.3.4", 99)

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError):
            parse_address("justahost")

    def test_empty_host_defaults_to_loopback(self):
        assert parse_address(":8000") == ("127.0.0.1", 8000)
