"""The shuffle transfer plane: pooling, prefetch, compression, resume."""

import http.server
import threading
import urllib.error
import urllib.request

import pytest

from repro.comm import transfer
from repro.comm.dataserver import DataServer
from repro.comm.transfer import (
    ConnectionPool,
    FetchError,
    FetchPolicy,
    Prefetcher,
    bucket_record_streams,
    fetch_pair_stream,
)
from repro.io.bucket import Bucket, FileBucket, merge_sorted_records, record_key


#: A fast policy so failure tests don't sleep through real backoff.
FAST = FetchPolicy(timeout=5.0, retries=2, retry_delay=0.01)


@pytest.fixture
def fresh_config():
    """Isolate the process-global transfer config across tests."""
    with transfer._config_lock:
        saved = transfer._config
    yield
    with transfer._config_lock:
        transfer._config = saved


def write_bucket(tmp_path, name, pairs):
    path = str(tmp_path / name)
    bucket = FileBucket(path)
    for pair in pairs:
        bucket.addpair(pair)
    bucket.close_writer()
    return path


class TestConnectionReuse:
    def test_sequential_fetches_reuse_one_connection(self, tmp_path):
        path = write_bucket(tmp_path, "a.mrsb", [("k", 1), ("l", 2)])
        pool = ConnectionPool()
        with DataServer(str(tmp_path)) as server:
            url = server.url_for(path)
            before = transfer.STATS.totals()
            for _ in range(5):
                assert list(fetch_pair_stream(url, pool=pool)) == [
                    ("k", 1),
                    ("l", 2),
                ]
            delta = transfer.STATS.delta(before)
        assert delta["fetch.connections.created"] == 1
        assert delta["fetch.connections.reused"] == 4
        assert delta["fetch.requests"] == 5

    def test_pool_caps_idle_connections(self, tmp_path):
        pool = ConnectionPool(max_idle_per_host=1)
        c1, reused1 = pool.acquire("127.0.0.1", 1234, timeout=1.0)
        c2, reused2 = pool.acquire("127.0.0.1", 1234, timeout=1.0)
        assert not reused1 and not reused2
        pool.release("127.0.0.1", 1234, c1, reusable=True)
        pool.release("127.0.0.1", 1234, c2, reusable=True)
        assert pool.idle_count("127.0.0.1", 1234) == 1
        _, reused3 = pool.acquire("127.0.0.1", 1234, timeout=1.0)
        assert reused3
        pool.close()

    def test_reused_connection_gets_callers_timeout(self, tmp_path):
        # HTTPConnection.timeout only applies at socket creation, so the
        # pool must retime the live socket when handing out a reused
        # connection.
        path = write_bucket(tmp_path, "a.mrsb", [("k", 1)])
        pool = ConnectionPool()
        with DataServer(str(tmp_path)) as server:
            url = server.url_for(path)
            list(fetch_pair_stream(url, pool=pool))
            conn, reused = pool.acquire(server.host, server.port, timeout=1.25)
            try:
                assert reused
                assert conn.sock is not None
                assert conn.sock.gettimeout() == 1.25
            finally:
                pool.release(server.host, server.port, conn, reusable=True)
        pool.close()

    def test_counters_visible_in_metrics_names(self, tmp_path):
        path = write_bucket(tmp_path, "a.mrsb", [("k", 1)])
        with DataServer(str(tmp_path)) as server:
            before = transfer.STATS.totals()
            list(fetch_pair_stream(server.url_for(path)))
            delta = transfer.STATS.delta(before)
        assert delta["fetch.bytes"] > 0
        assert delta["fetch.wire_bytes"] > 0
        assert delta["fetch.seconds"] > 0


class TestCompression:
    def payload(self):
        # Highly compressible values so gzip visibly shrinks the wire.
        return [(f"key{i:04d}", "x" * 200) for i in range(200)]

    def test_gzip_round_trips_and_shrinks_wire(self, tmp_path):
        pairs = self.payload()
        path = write_bucket(tmp_path, "big.mrsb", pairs)
        with DataServer(str(tmp_path)) as server:
            url = server.url_for(path)
            before = transfer.STATS.totals()
            plain = list(fetch_pair_stream(url, compression="off"))
            mid = transfer.STATS.totals()
            zipped = list(fetch_pair_stream(url, compression="gzip"))
            after = transfer.STATS.totals()
        assert plain == pairs
        assert zipped == pairs
        identity_wire = mid["fetch.wire_bytes"] - before["fetch.wire_bytes"]
        gzip_wire = after["fetch.wire_bytes"] - mid["fetch.wire_bytes"]
        assert gzip_wire < identity_wire / 2
        # Decoded payload bytes are identical either way.
        assert (mid["fetch.bytes"] - before["fetch.bytes"]) == (
            after["fetch.bytes"] - mid["fetch.bytes"]
        )

    def test_auto_skips_gzip_on_loopback(self, tmp_path):
        pairs = self.payload()
        path = write_bucket(tmp_path, "big.mrsb", pairs)
        with DataServer(str(tmp_path)) as server:
            url = server.url_for(path)
            before = transfer.STATS.totals()
            assert list(fetch_pair_stream(url, compression="auto")) == pairs
            delta = transfer.STATS.delta(before)
        # Identity transfer: wire bytes ~= decoded bytes.
        assert delta["fetch.wire_bytes"] >= delta["fetch.bytes"]

    def test_server_compression_off_serves_identity(self, tmp_path):
        pairs = self.payload()
        path = write_bucket(tmp_path, "big.mrsb", pairs)
        with DataServer(str(tmp_path), compression=False) as server:
            url = server.url_for(path)
            assert list(fetch_pair_stream(url, compression="gzip")) == pairs


class TestPrefetchMerge:
    def make_remote_buckets(self, tmp_path, server, n=4, rows=50):
        buckets = []
        for b in range(n):
            pairs = [(f"k{i:03d}b{b}", i * b) for i in range(rows)]
            path = write_bucket(tmp_path, f"bucket{b}.mrsb", pairs)
            bucket = Bucket(source=b, split=0, url=server.url_for(path))
            buckets.append(bucket)
        return buckets

    def merged(self, buckets, threads):
        opts_like = type("O", (), {"fetch_threads": threads})()
        transfer.configure(opts_like)
        streams, prefetcher = bucket_record_streams(buckets)
        try:
            return list(merge_sorted_records(streams))
        finally:
            if prefetcher is not None:
                prefetcher.close()

    def test_prefetched_merge_matches_sequential(
        self, tmp_path, fresh_config
    ):
        with DataServer(str(tmp_path)) as server:
            buckets = self.make_remote_buckets(tmp_path, server)
            sequential = self.merged(buckets, threads=0)
            prefetched = self.merged(buckets, threads=4)
        assert prefetched == sequential
        assert sequential == sorted(sequential, key=record_key)
        assert len(sequential) == 4 * 50

    def test_prefetch_records_fetch_spans(self, tmp_path, fresh_config):
        from repro.observability.tracing import TaskSpan

        with DataServer(str(tmp_path)) as server:
            buckets = self.make_remote_buckets(tmp_path, server)
            span = TaskSpan("ds", 0)
            span.mark("started")
            opts_like = type("O", (), {"fetch_threads": 2})()
            transfer.configure(opts_like)
            streams, prefetcher = bucket_record_streams(buckets, span=span)
            try:
                list(merge_sorted_records(streams))
            finally:
                prefetcher.close()
        fetches = span.to_dict()["fetches"]
        assert len(fetches) == len(buckets)
        assert {f["source"] for f in fetches} == {0, 1, 2, 3}
        assert all(f["seconds"] >= 0 for f in fetches)

    def test_single_remote_bucket_skips_prefetcher(
        self, tmp_path, fresh_config
    ):
        with DataServer(str(tmp_path)) as server:
            buckets = self.make_remote_buckets(tmp_path, server, n=1)
            opts_like = type("O", (), {"fetch_threads": 4})()
            transfer.configure(opts_like)
            streams, prefetcher = bucket_record_streams(buckets)
            assert prefetcher is None
            assert len(list(streams[0])) == 50

    def test_tiny_byte_budget_still_completes(self, tmp_path, fresh_config):
        # A budget smaller than one block must not deadlock: a block is
        # admitted whenever nothing else is in flight.
        with DataServer(str(tmp_path)) as server:
            buckets = self.make_remote_buckets(tmp_path, server, n=3)
            prefetcher = Prefetcher(threads=2, buffer_bytes=128)
            streams = [iter(prefetcher.add(b)) for b in buckets]
            prefetcher.start()
            try:
                merged = list(merge_sorted_records(streams))
            finally:
                prefetcher.close()
        assert len(merged) == 3 * 50

    def test_disjoint_key_ranges_small_budget_no_deadlock(
        self, tmp_path, monkeypatch, fresh_config
    ):
        # Regression: with range-disjoint buckets the merge drains one
        # stream completely while the others' queued blocks hold the
        # whole budget; the drained stream's producer must still be
        # admitted (empty-queue bypass) or the pipeline deadlocks.
        monkeypatch.setattr(transfer, "_BLOCK_RECORDS", 8)
        with DataServer(str(tmp_path)) as server:
            buckets = []
            expected = []
            for b, prefix in enumerate("ab"):
                pairs = [(f"{prefix}{i:04d}", i) for i in range(200)]
                expected.extend(pairs)
                path = write_bucket(tmp_path, f"range{b}.mrsb", pairs)
                bucket = Bucket(source=b, split=0, url=server.url_for(path))
                bucket.url_sorted = True  # stream block by block
                buckets.append(bucket)
            prefetcher = Prefetcher(threads=2, buffer_bytes=64)
            streams = [iter(prefetcher.add(b)) for b in buckets]
            prefetcher.start()
            merged = []
            consumer = threading.Thread(
                target=lambda: merged.extend(merge_sorted_records(streams)),
                daemon=True,
            )
            consumer.start()
            consumer.join(timeout=30)
            hung = consumer.is_alive()
            prefetcher.close()
            assert not hung, "merge deadlocked under a skewed byte budget"
        assert [pair for _, pair in merged] == expected

    def test_unsorted_buckets_release_budget_when_consumed(
        self, tmp_path, fresh_config
    ):
        # Unsorted buckets are materialized in the fetch threads; their
        # bytes are charged to the budget while resident and released
        # block by block as the merge consumes them — fully drained, the
        # accounting must return to zero.
        with DataServer(str(tmp_path)) as server:
            buckets = self.make_remote_buckets(tmp_path, server, n=3)
            assert not any(b.url_sorted for b in buckets)
            prefetcher = Prefetcher(threads=3, buffer_bytes=256)
            streams = [iter(prefetcher.add(b)) for b in buckets]
            prefetcher.start()
            try:
                merged = list(merge_sorted_records(streams))
            finally:
                prefetcher.close()
        assert len(merged) == 3 * 50
        assert prefetcher._budget._used == 0


class _TruncatingHandler(http.server.BaseHTTPRequestHandler):
    """Serves a bucket file but cuts the first N responses short."""

    payload = b""
    failures = 0
    lock = threading.Lock()

    def log_message(self, format, *args):  # noqa: A002
        pass

    def do_GET(self):
        cls = type(self)
        with cls.lock:
            fail = cls.failures > 0
            if fail:
                cls.failures -= 1
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(cls.payload)))
        self.end_headers()
        if fail:
            # Stop mid-record (an odd prefix of the body), then drop
            # the connection, emulating a dying peer.
            self.wfile.write(cls.payload[: max(1, len(cls.payload) // 2 - 3)])
            self.wfile.flush()
            self.connection.close()
        else:
            self.wfile.write(cls.payload)


@pytest.fixture
def truncating_server(tmp_path):
    pairs = [(f"key{i:03d}", i) for i in range(100)]
    path = write_bucket(tmp_path, "flaky.mrsb", pairs)
    with open(path, "rb") as f:
        payload = f.read()

    class Handler(_TruncatingHandler):
        pass

    Handler.payload = payload
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}/flaky.mrsb"
    try:
        yield Handler, url, pairs
    finally:
        server.shutdown()
        server.server_close()


class TestFailureHandling:
    def test_mid_transfer_death_resumes_without_duplicates(
        self, truncating_server
    ):
        handler, url, pairs = truncating_server
        handler.failures = 1
        policy = FetchPolicy(timeout=5.0, retries=3, retry_delay=0.01)
        before = transfer.STATS.totals()
        got = list(fetch_pair_stream(url, policy=policy, pool=ConnectionPool()))
        delta = transfer.STATS.delta(before)
        assert got == pairs  # each record exactly once, in order
        assert delta["fetch.retries"] >= 1

    def test_server_dead_after_retries_raises(self, truncating_server):
        handler, url, _ = truncating_server
        handler.failures = 99  # never recovers within the retry budget
        with pytest.raises(FetchError):
            list(fetch_pair_stream(url, policy=FAST, pool=ConnectionPool()))

    def test_connect_refused_raises_fetch_error(self):
        with pytest.raises(FetchError):
            list(
                fetch_pair_stream(
                    "http://127.0.0.1:1/never.mrsb",
                    policy=FetchPolicy(timeout=0.5, retries=2, retry_delay=0.01),
                    pool=ConnectionPool(),
                )
            )


class TestDataServerHardening:
    def test_quoted_traversal_is_rejected(self, tmp_path):
        secret = tmp_path.parent / "secret.txt"
        secret.write_text("password")
        served = tmp_path / "served"
        served.mkdir()
        with DataServer(str(served)) as server:
            url = f"http://{server.host}:{server.port}/%2e%2e/secret.txt"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url)
            assert err.value.code in (403, 404)

    def test_head_reports_real_length(self, tmp_path):
        path = write_bucket(tmp_path, "a.mrsb", [("k", 1)])
        size = len(open(path, "rb").read())
        with DataServer(str(tmp_path)) as server:
            request = urllib.request.Request(
                server.url_for(path), method="HEAD"
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
                assert int(response.headers["Content-Length"]) == size

    def test_head_missing_file_404(self, tmp_path):
        with DataServer(str(tmp_path)) as server:
            request = urllib.request.Request(
                f"http://{server.host}:{server.port}/no.mrsb", method="HEAD"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 404


class TestPolicyConfiguration:
    def test_configure_from_opts(self, fresh_config):
        opts_like = type(
            "O",
            (),
            {
                "fetch_timeout": 7.5,
                "fetch_retries": 9,
                "fetch_threads": 2,
                "fetch_buffer_mb": 1,
                "fetch_compression": "gzip",
            },
        )()
        config = transfer.configure(opts_like)
        assert config.policy.timeout == 7.5
        assert config.policy.retries == 9
        assert config.fetch_threads == 2
        assert config.fetch_buffer_bytes == 1024 * 1024
        assert config.compression == "gzip"
        assert transfer.get_config() is config

    def test_env_overrides(self, fresh_config, monkeypatch):
        monkeypatch.setenv("MRS_FETCH_TIMEOUT", "3")
        monkeypatch.setenv("MRS_FETCH_RETRIES", "5")
        monkeypatch.setenv("MRS_FETCH_COMPRESSION", "off")
        config = transfer.TransferConfig.from_env()
        assert config.policy.timeout == 3.0
        assert config.policy.retries == 5
        assert config.compression == "off"

    def test_partial_opts_keep_defaults(self, fresh_config):
        config = transfer.configure(type("O", (), {})())
        assert config.policy.timeout == FetchPolicy().timeout
        assert config.fetch_threads == 4

    def test_legacy_url_constants_track_live_policy(self, fresh_config):
        from repro.io import urls as url_io

        opts_like = type("O", (), {"fetch_retries": 9})()
        transfer.configure(opts_like)
        assert url_io.FETCH_RETRIES == 9
        assert url_io.FETCH_RETRY_DELAY == FetchPolicy().retry_delay
