"""Wire schema validation."""

import pytest

from repro.comm import protocol


class TestTaskDescriptor:
    def make(self, **overrides):
        descriptor = protocol.make_task_descriptor(
            dataset_id="map_1",
            task_index=2,
            op_dict={"kind": "map", "splits": 2, "parter_name": "partition",
                     "map_name": "map", "combine_name": None},
            input_urls=["file:/a", "file:/b"],
            outdir="/shared/map_1",
            format_ext="mrsb",
        )
        descriptor.update(overrides)
        return descriptor

    def test_valid_descriptor_passes(self):
        assert protocol.check_task_descriptor(self.make())

    def test_missing_field_rejected(self):
        descriptor = self.make()
        del descriptor["input_urls"]
        with pytest.raises(protocol.ProtocolError, match="input_urls"):
            protocol.check_task_descriptor(descriptor)

    def test_bad_op_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="operation"):
            protocol.check_task_descriptor(self.make(op={"no": "kind"}))

    def test_user_output_defaults_false(self):
        assert self.make()["user_output"] is False

    def test_types_are_xmlrpc_safe(self):
        for value in self.make().values():
            assert isinstance(value, (str, int, bool, list, dict, type(None)))


class TestDoneMessage:
    def test_roundtrip(self):
        message = protocol.make_done_message(
            3, "map_1", 0, [(0, "file:/x", True), (1, "http://h:1/y", False)]
        )
        urls = protocol.parse_bucket_urls(message["bucket_urls"])
        assert urls == [(0, "file:/x", True), (1, "http://h:1/y", False)]

    def test_legacy_pairs_accepted(self):
        # Old slaves report (split, url) pairs; sortedness defaults to
        # False (a safe "unknown" — the consumer just re-sorts).
        message = protocol.make_done_message(
            3, "map_1", 0, [(0, "file:/x"), (1, "http://h:1/y")]
        )
        urls = protocol.parse_bucket_urls(message["bucket_urls"])
        assert urls == [(0, "file:/x", False), (1, "http://h:1/y", False)]

    def test_malformed_urls_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_bucket_urls([["notanint", object()]])
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_bucket_urls(42)
