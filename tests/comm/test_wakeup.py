"""Pipe-based wakeup primitive."""

import select
import threading
import time

from repro.comm.wakeup import Wakeup


class TestWakeup:
    def test_wait_returns_false_on_timeout(self):
        w = Wakeup()
        try:
            started = time.perf_counter()
            assert w.wait(timeout=0.05) is False
            assert time.perf_counter() - started >= 0.04
        finally:
            w.close()

    def test_set_wakes_waiter(self):
        w = Wakeup()
        try:
            w.set()
            assert w.wait(timeout=1.0) is True
        finally:
            w.close()

    def test_cross_thread_wakeup(self):
        w = Wakeup()
        try:
            threading.Timer(0.02, w.set).start()
            started = time.perf_counter()
            assert w.wait(timeout=2.0) is True
            assert time.perf_counter() - started < 1.0
        finally:
            w.close()

    def test_repeated_sets_coalesce(self):
        w = Wakeup()
        try:
            for _ in range(10_000):  # more than the pipe buffer
                w.set()
            assert w.wait(timeout=0.5) is True
            # After clear, no residual wakeups.
            assert w.wait(timeout=0.05) is False
        finally:
            w.close()

    def test_usable_with_select(self):
        w = Wakeup()
        try:
            w.set()
            readable, _, _ = select.select([w.fileno()], [], [], 0.5)
            assert readable
        finally:
            w.close()

    def test_safe_after_close(self):
        w = Wakeup()
        w.close()
        w.set()  # no crash
        w.clear()
        assert w.wait(timeout=0.01) is False

    def test_double_close(self):
        w = Wakeup()
        w.close()
        w.close()
