"""Parameter-sweep driver and streaming moments."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.sweep import Moments, RandomWalkSweep
from repro.core.main import run_program

FLAGS = ["--sweep-replicates", "120", "--sweep-chunk", "30",
         "--walk-steps", "50", "--mrs-seed", "77"]


class TestMoments:
    def test_single_value(self):
        m = Moments()
        m.add(5.0)
        assert m.count == 1
        assert m.mean == 5.0
        assert math.isnan(m.variance)

    def test_matches_numpy(self):
        values = [1.5, -2.0, 0.25, 7.0, 7.0, -1.0]
        m = Moments()
        for v in values:
            m.add(v)
        assert m.mean == pytest.approx(np.mean(values))
        assert m.variance == pytest.approx(np.var(values, ddof=1))

    def test_merge_empty_identity(self):
        m = Moments()
        for v in (1.0, 2.0):
            m.add(v)
        before = (m.count, m.mean, m.m2)
        m.merge(Moments())
        assert (m.count, m.mean, m.m2) == before

    def test_merge_into_empty(self):
        m = Moments()
        other = Moments()
        other.add(3.0)
        other.add(5.0)
        m.merge(other)
        assert (m.count, m.mean) == (2, 4.0)

    def test_std_error(self):
        m = Moments()
        for v in (0.0, 2.0):
            m.add(v)
        assert m.std_error == pytest.approx(1.0)


@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2,
                max_size=40),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_merge_associativity_property(values, split_at):
    """Chunked merge == sequential accumulation (to rounding)."""
    sequential = Moments()
    for v in values:
        sequential.add(v)
    merged = Moments()
    for start in range(0, len(values), split_at):
        chunk = Moments()
        for v in values[start:start + split_at]:
            chunk.add(v)
        merged.merge(chunk)
    assert merged.count == sequential.count
    assert merged.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-9)
    assert merged.m2 == pytest.approx(sequential.m2, rel=1e-6, abs=1e-6)


class TestRandomWalkSweep:
    def test_results_per_parameter(self):
        prog = run_program(RandomWalkSweep, FLAGS, impl="serial")
        assert set(prog.results) == set(range(5))
        for moments in prog.results.values():
            assert moments.count == 120

    def test_drift_orders_the_means(self):
        """Higher drift -> higher expected running maximum."""
        prog = run_program(RandomWalkSweep, FLAGS, impl="serial")
        means = [prog.results[i].mean for i in range(5)]
        assert means[0] < means[-1]
        assert means == sorted(means)

    def test_mapreduce_matches_bypass_statistics(self):
        mr = run_program(RandomWalkSweep, FLAGS, impl="serial")
        byp = run_program(RandomWalkSweep, FLAGS, impl="bypass")
        for index in mr.results:
            assert mr.results[index].count == byp.results[index].count
            assert mr.results[index].mean == pytest.approx(
                byp.results[index].mean, rel=1e-12
            )
            assert mr.results[index].variance == pytest.approx(
                byp.results[index].variance, rel=1e-9
            )

    def test_chunking_invariance(self):
        """Task decomposition must not change the statistics."""
        coarse = run_program(
            RandomWalkSweep,
            ["--sweep-replicates", "120", "--sweep-chunk", "120",
             "--walk-steps", "50", "--mrs-seed", "77"],
            impl="serial",
        )
        fine = run_program(
            RandomWalkSweep,
            ["--sweep-replicates", "120", "--sweep-chunk", "10",
             "--walk-steps", "50", "--mrs-seed", "77"],
            impl="serial",
        )
        for index in coarse.results:
            assert coarse.results[index].mean == pytest.approx(
                fine.results[index].mean, rel=1e-12
            )

    def test_mockparallel_agrees(self):
        a = run_program(RandomWalkSweep, FLAGS, impl="serial")
        b = run_program(RandomWalkSweep, FLAGS, impl="mockparallel")
        for index in a.results:
            assert a.results[index].mean == b.results[index].mean
