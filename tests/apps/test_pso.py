"""PSO components: functions, motion, topologies, MRPSO invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.pso.functions import (
    FUNCTIONS,
    Ackley,
    Griewank,
    Rastrigin,
    Rosenbrock,
    Sphere,
    get_function,
)
from repro.apps.pso.mrpso import ApiaryPSO, serial_apiary_pso
from repro.apps.pso.particle import (
    best_of,
    initialize_swarm,
    step_swarm,
    velocity_update,
)
from repro.apps.pso.topology import (
    apiary_outgoing,
    coverage,
    partition_swarm,
    ring_neighbors,
    star_neighbors,
)
from repro.core.random_streams import numpy_stream


class TestFunctions:
    @pytest.mark.parametrize("name", sorted(FUNCTIONS))
    def test_optimum_is_zero(self, name):
        func = get_function(name, 5)
        optimum = np.ones(5) if name == "rosenbrock" else np.zeros(5)
        assert func(optimum) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(FUNCTIONS))
    def test_nonnegative_on_samples(self, name):
        func = get_function(name, 4)
        rng = numpy_stream(99)
        for _ in range(50):
            assert func(func.random_position(rng)) >= -1e-9

    def test_rosenbrock_known_value(self):
        func = Rosenbrock(2)
        # f(0,0) = 100*(0-0)^2 + (1-0)^2 = 1
        assert func(np.zeros(2)) == pytest.approx(1.0)

    def test_sphere_known_value(self):
        assert Sphere(3)(np.array([1.0, 2.0, 2.0])) == pytest.approx(9.0)

    def test_rastrigin_lattice_minima(self):
        func = Rastrigin(2)
        assert func(np.array([1.0, -1.0])) == pytest.approx(2.0, abs=1e-9)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            Sphere(3)(np.zeros(4))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_function("banana", 2)

    def test_in_bounds(self):
        func = Sphere(2)
        assert func.in_bounds(np.array([0.0, 99.0]))
        assert not func.in_bounds(np.array([0.0, 101.0]))

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            Sphere(0)


class TestParticle:
    def test_velocity_update_deterministic_per_stream(self):
        pos = np.zeros(3)
        vel = np.ones(3)
        pb = np.ones(3)
        nb = np.full(3, 2.0)
        v1 = velocity_update(vel, pos, pb, nb, numpy_stream(1))
        v2 = velocity_update(vel, pos, pb, nb, numpy_stream(1))
        assert np.array_equal(v1, v2)

    def test_velocity_update_magnitude_bounded(self):
        """With chi=0.72984 and both attractors at distance d, the new
        speed per coordinate is at most chi*(|v| + 4.1*d)."""
        pos, vel = np.zeros(2), np.full(2, 3.0)
        pb = nb = np.full(2, 5.0)
        v = velocity_update(vel, pos, pb, nb, numpy_stream(2))
        assert np.all(np.abs(v) <= 0.73 * (3.0 + 4.1 * 5.0) + 1e-9)

    def test_initialize_swarm_in_bounds(self):
        func = Sphere(6)
        positions, velocities, pbest_pos, pbest_val = initialize_swarm(
            func, 10, numpy_stream(3)
        )
        assert positions.shape == (10, 6)
        lo, hi = func.bounds
        assert (positions >= lo).all() and (positions <= hi).all()
        assert np.array_equal(positions, pbest_pos)
        for i in range(10):
            assert pbest_val[i] == func.evaluate(positions[i])

    def test_step_swarm_personal_best_monotone(self):
        func = Sphere(4)
        rng = numpy_stream(4)
        positions, velocities, pbest_pos, pbest_val = initialize_swarm(func, 6, rng)
        nbest_val, nbest_pos = best_of(pbest_val, pbest_pos)
        for _ in range(20):
            before = pbest_val.copy()
            step_swarm(func, positions, velocities, pbest_pos, pbest_val,
                       nbest_pos, rng)
            assert (pbest_val <= before + 1e-12).all()
            nbest_val, nbest_pos = best_of(pbest_val, pbest_pos)

    def test_step_swarm_counts_evaluations(self):
        func = Sphere(2)
        rng = numpy_stream(5)
        positions, velocities, pbest_pos, pbest_val = initialize_swarm(func, 5, rng)
        evals = step_swarm(func, positions, velocities, pbest_pos, pbest_val,
                           pbest_pos[0], rng)
        assert 0 <= evals <= 5

    def test_best_of(self):
        vals = np.array([3.0, 1.0, 2.0])
        pos = np.arange(6, dtype=float).reshape(3, 2)
        value, position = best_of(vals, pos)
        assert value == 1.0
        assert np.array_equal(position, pos[1])

    def test_empty_swarm_rejected(self):
        with pytest.raises(ValueError):
            initialize_swarm(Sphere(2), 0, numpy_stream(6))


class TestTopology:
    def test_ring_includes_self_and_neighbors(self):
        assert ring_neighbors(0, 5) == [4, 0, 1]
        assert ring_neighbors(2, 5) == [1, 2, 3]

    def test_ring_radius(self):
        assert ring_neighbors(0, 7, radius=2) == [5, 6, 0, 1, 2]

    def test_ring_small_swarm_dedupes(self):
        assert ring_neighbors(0, 1) == [0]
        assert set(ring_neighbors(0, 2)) == {0, 1}

    def test_star_is_everyone(self):
        assert star_neighbors(3, 5) == [0, 1, 2, 3, 4]

    def test_coverage(self):
        assert coverage(ring_neighbors, 9)
        assert coverage(star_neighbors, 9)

    def test_apiary_ring_direction(self):
        assert apiary_outgoing(0, 4) == [1]
        assert apiary_outgoing(3, 4) == [0]

    def test_apiary_single_hive_silent(self):
        assert apiary_outgoing(0, 1) == []

    def test_apiary_everyone_receives(self):
        received = set()
        for hive in range(6):
            received.update(apiary_outgoing(hive, 6))
        assert received == set(range(6))

    def test_partition_swarm(self):
        parts = partition_swarm(10, 3)
        assert parts == [(0, 4), (4, 3), (7, 3)]

    def test_partition_rejects_empty_hives(self):
        with pytest.raises(ValueError):
            partition_swarm(2, 3)

    def test_index_bounds_checked(self):
        with pytest.raises(IndexError):
            ring_neighbors(5, 5)
        with pytest.raises(IndexError):
            apiary_outgoing(4, 4)


class TestApiaryPSOInvariants:
    def run_small(self, **kw):
        params = dict(function="sphere", dims=6, n_subswarms=3,
                      particles_per=4, inner_iters=4, max_outer=8, seed=21)
        params.update(kw)
        return serial_apiary_pso(**params)

    def test_best_value_monotone_nonincreasing(self):
        prog = self.run_small()
        bests = [r.best for r in prog.convergence]
        assert all(b1 >= b2 for b1, b2 in zip(bests, bests[1:]))

    def test_evals_strictly_increasing(self):
        prog = self.run_small()
        evals = [r.evals for r in prog.convergence]
        assert all(e1 < e2 for e1, e2 in zip(evals, evals[1:]))

    def test_evals_bounded_by_schedule(self):
        prog = self.run_small()
        # init: subswarms*particles; per outer iter at most
        # subswarms*particles*inner more.
        upper = 3 * 4 + 8 * (3 * 4 * 4)
        assert prog.convergence[-1].evals <= upper

    def test_makes_progress_on_sphere(self):
        prog = self.run_small(max_outer=20)
        assert prog.convergence[-1].best < prog.convergence[0].best

    def test_target_stops_early(self):
        prog = self.run_small(max_outer=200, target=1e6)
        assert prog.best_value <= 1e6
        assert len(prog.convergence) < 200

    def test_best_position_matches_value(self):
        prog = self.run_small()
        func = get_function("sphere", 6)
        assert func(prog.best_position) == pytest.approx(prog.best_value)

    def test_single_hive_works(self):
        prog = self.run_small(n_subswarms=1)
        assert prog.convergence


@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=40))
def test_partition_swarm_property(particles, hives):
    if hives > particles:
        with pytest.raises(ValueError):
            partition_swarm(particles, hives)
        return
    parts = partition_swarm(particles, hives)
    assert sum(count for _, count in parts) == particles
    assert all(count >= 1 for _, count in parts)
    # contiguity
    position = 0
    for start, count in parts:
        assert start == position
        position += count


@given(st.integers(min_value=1, max_value=32))
@settings(max_examples=30)
def test_ring_coverage_property(size):
    assert coverage(ring_neighbors, size)


class TestApiaryStagnation:
    BASE = dict(function="sphere", dims=6, n_subswarms=3, particles_per=4,
                inner_iters=3, max_outer=15, seed=99)

    def run_with_stagnation(self, limit, **overrides):
        from repro.core.main import run_program
        from repro.apps.pso.mrpso import ApiaryPSO

        params = dict(self.BASE)
        params.update(overrides)
        flags = [
            "--mrs-seed", str(params["seed"]),
            "--pso-function", params["function"],
            "--pso-dims", str(params["dims"]),
            "--pso-subswarms", str(params["n_subswarms"]),
            "--pso-particles", str(params["particles_per"]),
            "--pso-inner", str(params["inner_iters"]),
            "--pso-outer", str(params["max_outer"]),
            "--pso-stagnation", str(limit),
        ]
        return run_program(ApiaryPSO, flags, impl="serial")

    def test_off_by_default_matches_legacy(self):
        with_zero = self.run_with_stagnation(0)
        baseline = serial_apiary_pso(**{
            "function": "sphere", "dims": 6, "n_subswarms": 3,
            "particles_per": 4, "inner_iters": 3, "max_outer": 15,
            "seed": 99,
        })
        assert [r.best for r in with_zero.convergence] == [
            r.best for r in baseline.convergence
        ]

    def test_reinit_triggers_and_costs_evaluations(self):
        """Aggressive stagnation actually reinitializes hives, and each
        reinit re-evaluates the hive's initial population."""
        never = self.run_with_stagnation(0, max_outer=25)
        eager = self.run_with_stagnation(1, max_outer=25)
        assert eager.reinit_count > 0
        assert never.reinit_count == 0
        # Trajectories diverge once a hive is reinitialized.
        assert [r.best for r in eager.convergence] != [
            r.best for r in never.convergence
        ]

    def test_global_best_still_monotone(self):
        prog = self.run_with_stagnation(2)
        bests = [r.best for r in prog.convergence]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:]))

    def test_equivalence_preserved_with_stagnation(self):
        from repro.core.main import run_program
        from repro.apps.pso.mrpso import ApiaryPSO

        flags = [
            "--mrs-seed", "99", "--pso-function", "sphere",
            "--pso-dims", "6", "--pso-subswarms", "3",
            "--pso-particles", "4", "--pso-inner", "3",
            "--pso-outer", "10", "--pso-stagnation", "2",
        ]
        a = run_program(ApiaryPSO, flags, impl="serial")
        b = run_program(ApiaryPSO, flags, impl="bypass")
        c = run_program(ApiaryPSO, flags, impl="mockparallel")
        la = [(r.evals, r.best) for r in a.convergence]
        assert la == [(r.evals, r.best) for r in b.convergence]
        assert la == [(r.evals, r.best) for r in c.convergence]
