"""Blocked matrix multiplication and distributed sort."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.matmul import BlockMatMul, assemble_blocks, split_blocks
from repro.apps.sort import DistributedSort, sorted_lines
from repro.core.job import Job
from repro.core.main import run_program
from repro.core.options import default_options
from repro.core.random_streams import numpy_stream
from repro.runtime.serial import SerialBackend


def multiply_via_mapreduce(A, B, block=8, impl_backend=SerialBackend):
    opts = default_options(mm_block=block)
    program = BlockMatMul(opts, [])
    job = Job(impl_backend(program), program)
    return program.multiply(job, A, B)


class TestBlockHelpers:
    def test_split_assemble_roundtrip(self):
        rng = numpy_stream(1)
        matrix = rng.normal(size=(10, 7))
        blocks = split_blocks(matrix, 3)
        assert np.array_equal(assemble_blocks(blocks), matrix)

    def test_split_block_shapes(self):
        blocks = split_blocks(np.zeros((5, 5)), 2)
        assert blocks[(0, 0)].shape == (2, 2)
        assert blocks[(2, 2)].shape == (1, 1)  # ragged edge

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            split_blocks(np.zeros((2, 2)), 0)

    def test_empty_assemble(self):
        assert assemble_blocks({}).size == 0


class TestMatMul:
    def test_matches_numpy(self):
        rng = numpy_stream(2)
        A = rng.normal(size=(12, 9))
        B = rng.normal(size=(9, 15))
        C = multiply_via_mapreduce(A, B, block=4)
        assert np.allclose(C, A @ B, atol=1e-10)

    def test_block_size_invariance(self):
        rng = numpy_stream(3)
        A = rng.normal(size=(10, 10))
        B = rng.normal(size=(10, 10))
        c3 = multiply_via_mapreduce(A, B, block=3)
        c10 = multiply_via_mapreduce(A, B, block=10)
        assert np.allclose(c3, c10, atol=1e-10)

    def test_single_block_degenerate_case(self):
        rng = numpy_stream(4)
        A = rng.normal(size=(4, 4))
        B = rng.normal(size=(4, 4))
        C = multiply_via_mapreduce(A, B, block=16)
        assert np.allclose(C, A @ B)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            multiply_via_mapreduce(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_program_run(self):
        prog = run_program(
            BlockMatMul, ["--mm-size", "24", "--mm-block", "8"], impl="serial"
        )
        assert np.allclose(prog.result, prog.reference, atol=1e-10)

    def test_mockparallel_agrees(self):
        prog_s = run_program(
            BlockMatMul, ["--mm-size", "20", "--mm-block", "6",
                          "--mrs-seed", "2"], impl="serial",
        )
        prog_m = run_program(
            BlockMatMul, ["--mm-size", "20", "--mm-block", "6",
                          "--mrs-seed", "2"], impl="mockparallel",
        )
        assert np.array_equal(prog_s.result, prog_m.result)


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=20, deadline=None)
def test_matmul_property(n, m, p, block):
    rng = numpy_stream(5, n, m, p, block)
    A = rng.normal(size=(n, m))
    B = rng.normal(size=(m, p))
    C = multiply_via_mapreduce(A, B, block=block)
    assert C.shape == (n, p)
    assert np.allclose(C, A @ B, atol=1e-9)


class TestDistributedSort:
    def run_sort(self, lines, tmp_path, impl="serial"):
        path = tmp_path / "in.txt"
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return run_program(
            DistributedSort,
            [str(path), str(tmp_path / "out")],
            impl=impl,
            reduce_tasks=4,
        )

    def test_output_globally_sorted(self, tmp_path):
        lines = ["pear", "apple", "zebra", "mango", "apple", "fig"]
        prog = self.run_sort(lines, tmp_path)
        assert sorted_lines(prog) == sorted(lines)

    def test_duplicates_preserved(self, tmp_path):
        lines = ["b", "a", "b", "a", "b"]
        prog = self.run_sort(lines, tmp_path)
        assert sorted_lines(prog) == ["a", "a", "b", "b", "b"]

    def test_mockparallel_matches(self, tmp_path):
        lines = [f"key{i % 7:02d}" for i in range(40)]
        (tmp_path / "s").mkdir()
        (tmp_path / "m").mkdir()
        serial = self.run_sort(lines, tmp_path / "s")
        mock = self.run_sort(lines, tmp_path / "m", impl="mockparallel")
        assert sorted_lines(serial) == sorted_lines(mock) == sorted(lines)


@given(st.lists(st.text(alphabet="abcdefghij", min_size=1, max_size=8),
                min_size=1, max_size=30))
@settings(max_examples=20, deadline=None)
def test_sort_property(tmp_path_factory, lines):
    tmp = tmp_path_factory.mktemp("sort")
    path = tmp / "in.txt"
    path.write_text("\n".join(lines) + "\n")
    prog = run_program(
        DistributedSort, [str(path), str(tmp / "out")],
        impl="serial", reduce_tasks=3,
    )
    assert sorted_lines(prog) == sorted(lines)
