"""Per-particle MRPSO (reference [5]) tests."""

import pytest

from repro.apps.pso.mrpso_single import SingleParticlePSO
from repro.core.main import run_program

FLAGS = [
    "--mrs-seed", "44", "--sp-function", "sphere", "--sp-dims", "8",
    "--sp-particles", "10", "--sp-iters", "12",
]


class TestSingleParticlePSO:
    def test_implementations_bit_identical(self):
        logs = {}
        for impl in ("serial", "bypass", "mockparallel"):
            prog = run_program(SingleParticlePSO, FLAGS, impl=impl)
            logs[impl] = [(it, best) for it, _, best in prog.convergence]
        assert logs["serial"] == logs["bypass"] == logs["mockparallel"]

    def test_best_monotone(self):
        prog = run_program(SingleParticlePSO, FLAGS, impl="serial")
        bests = [best for _, _, best in prog.convergence]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:]))

    def test_makes_progress(self):
        prog = run_program(SingleParticlePSO, FLAGS, impl="serial")
        assert prog.convergence[-1][2] < prog.convergence[0][2]

    def test_ring_spreads_information(self):
        """With an lbest ring each particle only hears its immediate
        neighbors per iteration, yet every particle's nbest eventually
        reflects knowledge from beyond its own history — smoke-check
        via global progress with radius 1 vs a no-communication run
        (radius can't be 0, so compare against particle count 1)."""
        social = run_program(SingleParticlePSO, FLAGS, impl="serial")
        lonely = run_program(
            SingleParticlePSO,
            ["--mrs-seed", "44", "--sp-function", "sphere", "--sp-dims", "8",
             "--sp-particles", "1", "--sp-iters", "12"],
            impl="serial",
        )
        assert social.best_value < lonely.best_value

    def test_target_stop(self):
        prog = run_program(
            SingleParticlePSO, FLAGS + ["--sp-target", "1e6"], impl="serial"
        )
        assert prog.best_value <= 1e6 or len(prog.convergence) == 12

    def test_one_task_per_particle(self):
        """The defining (and costly) property of this formulation."""
        prog = run_program(SingleParticlePSO, FLAGS, impl="serial")
        assert prog._last_dataset.ntasks == 10
