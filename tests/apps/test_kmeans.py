"""k-means iterative MapReduce program."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeans, generate_blobs, inertia, nearest_centroid
from repro.core.main import run_program
from repro.core.random_streams import numpy_stream

FLAGS = ["--km-points", "300", "--km-clusters", "3", "--km-dims", "2",
         "--km-splits", "4", "--mrs-seed", "8"]


class TestHelpers:
    def test_generate_blobs_shapes(self):
        points, centers = generate_blobs(100, 4, 3, numpy_stream(1))
        assert points.shape == (100, 3)
        assert centers.shape == (4, 3)

    def test_blobs_deterministic(self):
        a, _ = generate_blobs(50, 2, 2, numpy_stream(2))
        b, _ = generate_blobs(50, 2, 2, numpy_stream(2))
        assert np.array_equal(a, b)

    def test_nearest_centroid(self):
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert nearest_centroid(np.array([1.0, 1.0]), centroids) == 0
        assert nearest_centroid(np.array([9.0, 9.0]), centroids) == 1

    def test_inertia_zero_when_points_are_centroids(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert inertia(points, points) == 0.0


class TestKMeansRun:
    def test_converges(self):
        prog = run_program(KMeans, FLAGS, impl="serial")
        assert prog.iterations_run >= 1
        assert prog.shift_history[-1] <= max(prog.shift_history)
        assert np.isfinite(prog.inertia)

    def test_inertia_reasonable_for_blobs(self):
        """Tight blobs (sigma=0.5): mean squared distance per point
        should be near the noise floor once converged."""
        prog = run_program(KMeans, FLAGS, impl="serial")
        per_point = prog.inertia / prog.n_points
        assert per_point < 5.0

    def test_last_shift_below_tolerance_or_max_iters(self):
        prog = run_program(KMeans, FLAGS, impl="serial")
        assert (
            prog.shift_history[-1] <= prog.tolerance
            or prog.iterations_run == prog.max_iters
        )

    def test_centroid_count_preserved(self):
        prog = run_program(KMeans, FLAGS, impl="serial")
        assert prog.centroids.shape == (3, 2)

    def test_deterministic_given_seed(self):
        a = run_program(KMeans, FLAGS, impl="serial")
        b = run_program(KMeans, FLAGS, impl="serial")
        assert np.array_equal(a.centroids, b.centroids)

    def test_different_seed_differs(self):
        other = ["--km-points", "300", "--km-clusters", "3", "--km-dims", "2",
                 "--km-splits", "4", "--mrs-seed", "9"]
        a = run_program(KMeans, FLAGS, impl="serial")
        b = run_program(KMeans, other, impl="serial")
        assert not np.array_equal(a.centroids, b.centroids)


class TestKMeansFile:
    """The file-writing variant used by service/CLI runs."""

    def test_writes_model_file(self, tmp_path):
        from repro.apps.kmeans import KMeansFile

        outdir = tmp_path / "out"
        prog = run_program(KMeansFile, FLAGS + [str(outdir)], impl="serial")
        text = (outdir / "centroids.txt").read_text()
        lines = text.splitlines()
        assert len(lines) == prog.n_clusters + 2
        assert lines[-2].startswith("iterations\t")
        assert lines[-1].startswith("inertia\t")

    def test_file_identical_across_implementations(self, tmp_path):
        from repro.apps.kmeans import KMeansFile

        texts = {}
        for impl in ("serial", "mockparallel", "bypass"):
            outdir = tmp_path / impl
            run_program(KMeansFile, FLAGS + [str(outdir)], impl=impl)
            texts[impl] = (outdir / "centroids.txt").read_text()
        assert texts["serial"] == texts["mockparallel"]
        # bypass sums in a different order; compare numerically
        def rows(text):
            return [
                [float(x) for x in line.split()]
                for line in text.splitlines()
                if "\t" not in line
            ]
        assert np.allclose(rows(texts["serial"]), rows(texts["bypass"]),
                           atol=1e-5)

    def test_no_outdir_is_fine(self):
        from repro.apps.kmeans import KMeansFile

        prog = run_program(KMeansFile, FLAGS, impl="serial")
        assert np.isfinite(prog.inertia)
