"""Inverted index tests."""

import pytest

from repro.apps.inverted_index import InvertedIndex, output_index
from repro.core.main import run_program


@pytest.fixture
def docs(tmp_path):
    corpus = tmp_path / "docs"
    corpus.mkdir()
    (corpus / "a.txt").write_text("apple banana\napple\n")
    (corpus / "b.txt").write_text("banana cherry\n")
    (corpus / "c.txt").write_text("cherry apple\n")
    return str(corpus)


class TestInvertedIndex:
    def test_postings_correct(self, docs, tmp_path):
        prog = run_program(
            InvertedIndex, [docs, str(tmp_path / "out")], impl="serial"
        )
        index = output_index(prog)
        assert index["apple"] == ["a.txt", "c.txt"]
        assert index["banana"] == ["a.txt", "b.txt"]
        assert index["cherry"] == ["b.txt", "c.txt"]

    def test_duplicates_within_doc_collapsed(self, docs, tmp_path):
        prog = run_program(
            InvertedIndex, [docs, str(tmp_path / "out")], impl="serial"
        )
        # 'apple' appears twice in a.txt but posts once.
        assert output_index(prog)["apple"].count("a.txt") == 1

    def test_matches_bypass(self, docs, tmp_path):
        mr = run_program(
            InvertedIndex, [docs, str(tmp_path / "m")], impl="serial"
        )
        plain = run_program(
            InvertedIndex, [docs, str(tmp_path / "p")], impl="bypass"
        )
        assert output_index(mr) == plain.bypass_index

    def test_mockparallel_matches(self, docs, tmp_path):
        serial = run_program(
            InvertedIndex, [docs, str(tmp_path / "s")], impl="serial"
        )
        mock = run_program(
            InvertedIndex, [docs, str(tmp_path / "mk")], impl="mockparallel"
        )
        assert output_index(serial) == output_index(mock)

    def test_postings_sorted(self, docs, tmp_path):
        prog = run_program(
            InvertedIndex, [docs, str(tmp_path / "out")], impl="serial"
        )
        for postings in output_index(prog).values():
            assert postings == sorted(postings)

    def test_empty_document_ok(self, tmp_path):
        corpus = tmp_path / "docs"
        corpus.mkdir()
        (corpus / "full.txt").write_text("word\n")
        (corpus / "empty.txt").write_text("")
        prog = run_program(
            InvertedIndex, [str(corpus), str(tmp_path / "out")],
            impl="serial",
        )
        assert output_index(prog) == {"word": ["full.txt"]}
