"""Tall-and-skinny QR suite: numerics and runtime coverage.

Each algorithm must produce a factorization as good as a direct
``numpy.linalg.qr`` — orthogonality and reconstruction residuals near
machine epsilon — and the zero-copy (``numpy`` serializer) and pickle
paths must produce bit-identical factors, since the dataflow is
deterministic.
"""

import numpy as np
import pytest

from repro.core.main import run_program
from repro.apps.tsqr.numerics import (
    KIND_Q1,
    KIND_R,
    orthogonality_error,
    reconstruction_error,
    tag_block,
    untag_block,
)
from repro.apps.tsqr.programs import (
    ALGORITHMS,
    CholeskyQR,
    DirectTSQR,
    TSMatMulBtA,
)

SHAPE_ARGS = [
    "--tsqr-rows", "600", "--tsqr-cols", "8", "--tsqr-blocks", "4",
]


class TestTaggedBlocks:
    def test_roundtrip(self):
        block = np.arange(20.0).reshape(5, 4)
        kind, index, payload = untag_block(tag_block(KIND_Q1, 3, block))
        assert (kind, index) == (KIND_Q1, 3)
        assert np.array_equal(payload, block)

    def test_payload_is_a_view(self):
        tagged = tag_block(KIND_R, 0, np.eye(4))
        _, _, payload = untag_block(tagged)
        assert payload.base is tagged

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            tag_block(KIND_R, 0, np.zeros((5, 1)))
        with pytest.raises(ValueError):
            tag_block(KIND_R, 0, np.zeros(5))


class TestNumericChecks:
    def test_error_measures_agree_with_numpy_qr(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((200, 10))
        Q, R = np.linalg.qr(A)
        assert orthogonality_error(Q) < 1e-12
        assert reconstruction_error(A, Q, R) < 1e-12
        assert orthogonality_error(A) > 1.0  # not orthonormal


class TestAlgorithmsSerial:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_meets_qr_quality_bar(self, name):
        # Each run() returns nonzero (-> run_program raises) unless its
        # own residual checks pass, so success here is the assertion.
        program = run_program(ALGORITHMS[name], list(SHAPE_ARGS), impl="serial")
        if name in ("bta", "ab"):
            assert program.result is not None
        else:
            assert program.Q is not None and program.R is not None

    @pytest.mark.parametrize("name", ["cholesky", "indirect", "direct"])
    def test_factors_match_full_matrix(self, name):
        program = run_program(ALGORITHMS[name], list(SHAPE_ARGS), impl="serial")
        A = program.full_matrix()
        assert program.Q.shape == A.shape
        assert program.R.shape == (A.shape[1], A.shape[1])
        assert reconstruction_error(A, program.Q, program.R) < 1e-10
        assert orthogonality_error(program.Q) < 1e-10
        # R is upper triangular.
        assert np.allclose(program.R, np.triu(program.R))

    def test_bta_matches_dense_product(self):
        program = run_program(TSMatMulBtA, list(SHAPE_ARGS), impl="serial")
        # run() already checked the residual; spot-check the shape.
        assert program.result.shape == (8, 8)


class TestSerializerPathsAgree:
    @pytest.mark.parametrize("impl", ["serial", "mockparallel"])
    def test_direct_tsqr_bit_identical_across_serializers(self, impl):
        factors = {}
        for serializer in ("numpy", "pickle"):
            program = run_program(
                DirectTSQR,
                SHAPE_ARGS + ["--tsqr-serializer", serializer],
                impl=impl,
            )
            factors[serializer] = (program.Q, program.R)
        q_np, r_np = factors["numpy"]
        q_pk, r_pk = factors["pickle"]
        assert np.array_equal(q_np, q_pk)
        assert np.array_equal(r_np, r_pk)

    def test_cholesky_mockparallel_matches_serial(self):
        runs = [
            run_program(CholeskyQR, list(SHAPE_ARGS), impl=impl)
            for impl in ("serial", "mockparallel")
        ]
        assert np.array_equal(runs[0].Q, runs[1].Q)
        assert np.array_equal(runs[0].R, runs[1].R)


@pytest.mark.integration
def test_direct_tsqr_multiprocess():
    program = run_program(
        DirectTSQR,
        SHAPE_ARGS + ["--tsqr-serializer", "numpy"],
        impl="multiprocess",
        procs=2,
    )
    A = program.full_matrix()
    assert orthogonality_error(program.Q) < 1e-10
    assert reconstruction_error(A, program.Q, program.R) < 1e-10
