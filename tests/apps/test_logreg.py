"""Logistic regression (summation form) tests."""

import numpy as np
import pytest

from repro.apps.logreg import (
    LogisticRegression,
    generate_classification_data,
    shard_gradient,
    sigmoid,
)
from repro.core.main import run_program
from repro.core.random_streams import numpy_stream

FLAGS = ["--lr-points", "600", "--lr-dims", "4", "--lr-shards", "3",
         "--lr-iters", "40", "--mrs-seed", "15"]


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_symmetry(self):
        z = np.array([-3.0, -1.0, 1.0, 3.0])
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-800.0, 800.0]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_monotone(self):
        z = np.linspace(-6, 6, 50)
        assert (np.diff(sigmoid(z)) > 0).all()


class TestDataGeneration:
    def test_shapes_and_bias_column(self):
        X, y, w = generate_classification_data(100, 3, numpy_stream(1))
        assert X.shape == (100, 4)
        assert (X[:, -1] == 1.0).all()
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert w.shape == (4,)

    def test_deterministic(self):
        a = generate_classification_data(50, 2, numpy_stream(2))
        b = generate_classification_data(50, 2, numpy_stream(2))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_labels_mostly_follow_model(self):
        X, y, w = generate_classification_data(
            2000, 3, numpy_stream(3), noise_flip=0.0
        )
        implied = (sigmoid(X @ w) > 0.5).astype(float)
        assert (implied == y).mean() == 1.0


class TestGradient:
    def test_zero_at_perfect_separation_limit(self):
        """With huge weights matching the labels, sigma saturates and
        the gradient vanishes."""
        X = np.array([[1.0, 1.0], [-1.0, 1.0]])
        y = np.array([1.0, 0.0])
        w = np.array([100.0, 0.0])
        gradient, _, count = shard_gradient(X, y, w)
        assert count == 2
        assert np.abs(gradient).max() < 1e-10

    def test_matches_finite_differences(self):
        rng = numpy_stream(4)
        X = rng.normal(size=(30, 3))
        y = (rng.random(30) > 0.5).astype(float)
        w = rng.normal(size=3)
        gradient, loss, _ = shard_gradient(X, y, w)
        eps = 1e-6
        for j in range(3):
            bump = w.copy()
            bump[j] += eps
            _, loss_plus, _ = shard_gradient(X, y, bump)
            numeric = (loss_plus - loss) / eps
            assert numeric == pytest.approx(gradient[j], rel=1e-3, abs=1e-4)


class TestTraining:
    def test_loss_decreases(self):
        prog = run_program(LogisticRegression, FLAGS, impl="serial")
        assert prog.loss_history[0] > prog.loss_history[-1]
        # Log-loss starts at ln(2) with zero weights.
        assert prog.loss_history[0] == pytest.approx(np.log(2), rel=1e-6)

    def test_accuracy_beats_chance_strongly(self):
        prog = run_program(LogisticRegression, FLAGS, impl="serial")
        assert prog.accuracy > 0.85

    def test_all_implementations_bit_identical(self):
        runs = {
            impl: run_program(LogisticRegression, FLAGS, impl=impl)
            for impl in ("serial", "mockparallel", "bypass")
        }
        base = runs["serial"]
        for impl, prog in runs.items():
            assert np.array_equal(prog.weights, base.weights), impl
            assert prog.loss_history == base.loss_history, impl

    def test_shard_count_changes_nothing_semantically(self):
        """Different shard counts change FP summation order but the
        learned model must be numerically indistinguishable."""
        few = run_program(
            LogisticRegression,
            ["--lr-points", "600", "--lr-dims", "4", "--lr-shards", "2",
             "--lr-iters", "40", "--mrs-seed", "15"],
            impl="serial",
        )
        many = run_program(LogisticRegression, FLAGS, impl="serial")
        assert np.allclose(few.weights, many.weights, atol=1e-8)

    def test_tolerance_stops_early(self):
        prog = run_program(
            LogisticRegression,
            FLAGS[:-2] + ["--mrs-seed", "15", "--lr-tol", "0.5"],
            impl="serial",
        )
        assert prog.iterations_run < 40
