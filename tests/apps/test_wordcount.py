"""WordCount program (Program 1)."""

import collections

import pytest

from repro.apps.wordcount import (
    WordCount,
    WordCountCombined,
    WordCountWithBypass,
    count_words_serially,
    output_counts,
)
from repro.core.main import run_program
from repro.core.options import default_options


class TestMapReduceFunctions:
    def test_map_emits_one_per_token(self):
        prog = WordCount(default_options(), [])
        assert list(prog.map(0, "a b a")) == [("a", 1), ("b", 1), ("a", 1)]

    def test_map_empty_line(self):
        prog = WordCount(default_options(), [])
        assert list(prog.map(3, "")) == []

    def test_map_collapses_whitespace(self):
        prog = WordCount(default_options(), [])
        assert [k for k, _ in prog.map(0, "  x\t\ty  ")] == ["x", "y"]

    def test_reduce_sums(self):
        prog = WordCount(default_options(), [])
        assert list(prog.reduce("w", iter([1, 1, 1]))) == [3]

    def test_combiner_is_reduce(self):
        prog = WordCountCombined(default_options(), [])
        assert list(prog.combine("w", iter([2, 3]))) == [5]


class TestEndToEnd:
    def test_counts_match_reference(self, text_file, out_dir):
        prog = run_program(WordCountCombined, [text_file, out_dir])
        expected = count_words_serially(open(text_file).read().splitlines())
        assert output_counts(prog) == expected

    def test_multi_file_input(self, small_corpus, out_dir):
        root, paths = small_corpus
        prog = run_program(WordCountCombined, [root, out_dir])
        lines = []
        for path in paths:
            lines.extend(open(path).read().splitlines())
        assert output_counts(prog) == count_words_serially(lines)

    def test_directory_vs_explicit_files_identical(self, small_corpus, tmp_path):
        root, paths = small_corpus
        by_dir = run_program(
            WordCountCombined, [root, str(tmp_path / "d")]
        )
        by_files = run_program(
            WordCountCombined, paths + [str(tmp_path / "f")]
        )
        assert output_counts(by_dir) == output_counts(by_files)

    def test_bypass_program(self, text_file, out_dir):
        prog = run_program(
            WordCountWithBypass, [text_file, out_dir], impl="bypass"
        )
        expected = count_words_serially(open(text_file).read().splitlines())
        assert prog.bypass_counts == expected


class TestReference:
    def test_counter_equivalence(self):
        lines = ["a b", "b c c"]
        expected = collections.Counter("a b b c c".split())
        assert count_words_serially(lines) == dict(expected)

    def test_empty_input(self):
        assert count_words_serially([]) == {}
