"""The ctypes C kernel (the paper's actual Fig 3b mechanism).

All tests skip cleanly where no C compiler exists; the NumPy kernel
covers that world (DESIGN.md substitution table).
"""

import pytest

from repro.apps.pi import halton_ctypes
from repro.apps.pi.halton import HaltonSequence, radical_inverse, sample_inside

pytestmark = pytest.mark.skipif(
    not halton_ctypes.is_available(), reason="no C compiler available"
)


class TestCKernel:
    def test_counts_bit_identical_to_python(self):
        for offset, count in [(0, 50_000), (987_654, 5_000), (1, 1), (7, 0)]:
            assert halton_ctypes.count_inside_ctypes(offset, count) == (
                sample_inside(offset, count)
            )

    def test_points_bit_identical_to_incremental_python(self):
        """Same operations in the same order => same doubles, exactly
        (the -ffp-contract=off compile flag is what makes this hold)."""
        x, y = halton_ctypes.halton_points_ctypes(987_654, 200)
        seq = HaltonSequence(987_654)
        for i in range(200):
            px, py = seq.next_point()
            assert x[i] == px
            assert y[i] == py

    def test_points_match_direct_formula_approximately(self):
        """The direct radical inverse accumulates in a different order,
        so agreement is to rounding, not bit-exact."""
        x, y = halton_ctypes.halton_points_ctypes(100, 50)
        for i in range(50):
            assert x[i] == pytest.approx(radical_inverse(2, 100 + i), abs=1e-12)
            assert y[i] == pytest.approx(radical_inverse(3, 100 + i), abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            halton_ctypes.count_inside_ctypes(0, -1)
        with pytest.raises(ValueError):
            halton_ctypes.count_inside_ctypes(-1, 10)

    def test_c_is_much_faster_than_python(self):
        """The whole point of Fig 3b."""
        from repro.apps.pi.halton import measure_python_rate

        c_rate = halton_ctypes.measure_ctypes_rate(2_000_000)
        py_rate = measure_python_rate(200_000)
        assert c_rate > 5 * py_rate

    def test_library_cached_across_calls(self):
        first = halton_ctypes._get_library()
        second = halton_ctypes._get_library()
        assert first is second


class TestEstimatorWithCKernel:
    def test_kernel_option(self):
        from repro.core.main import run_program
        from repro.apps.pi.estimator import PiEstimator

        flags = ["--pi-samples", "40000", "--pi-tasks", "4"]
        c = run_program(
            PiEstimator, flags + ["--pi-kernel", "ctypes"], impl="serial"
        )
        py = run_program(
            PiEstimator, flags + ["--pi-kernel", "python"], impl="serial"
        )
        assert c.pi_estimate == py.pi_estimate
