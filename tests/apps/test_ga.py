"""Island-model genetic algorithm tests."""

import numpy as np
import pytest

from repro.apps.ga import (
    IslandGA,
    IslandState,
    evolve_island,
    merge_migrants,
    tournament_select,
)
from repro.apps.pso.functions import Sphere, get_function
from repro.core.main import run_program
from repro.core.random_streams import numpy_stream

GA_FLAGS = [
    "--mrs-seed", "31", "--ga-function", "sphere", "--ga-dims", "6",
    "--ga-islands", "3", "--ga-pop", "10", "--ga-gens", "3",
    "--ga-rounds", "6",
]


def make_state(n=8, dims=4, seed=1):
    func = Sphere(dims)
    rng = numpy_stream(seed)
    genomes = rng.uniform(*func.bounds, (n, dims))
    fitness = np.array([func.evaluate(g) for g in genomes])
    return IslandState(0, genomes, fitness), func


class TestComponents:
    def test_tournament_prefers_fitter(self):
        fitness = np.array([100.0, 0.0, 100.0, 100.0])
        rng = numpy_stream(2)
        picks = [tournament_select(fitness, rng, k=3) for _ in range(50)]
        assert picks.count(1) > 25  # the fit individual dominates

    def test_evolve_island_counts_evals_and_generations(self):
        state, func = make_state()
        before = state.evals
        evolve_island(state, func, generations=4, rng=numpy_stream(3))
        assert state.generation == 4
        assert state.evals == before + 4 * len(state.fitness)

    def test_elitism_never_regresses(self):
        state, func = make_state()
        rng = numpy_stream(4)
        best_history = [state.best_fitness]
        for _ in range(15):
            evolve_island(state, func, 1, rng)
            best_history.append(state.best_fitness)
        assert all(
            b2 <= b1 + 1e-9 for b1, b2 in zip(best_history, best_history[1:])
        )

    def test_genomes_stay_in_bounds(self):
        state, func = make_state()
        evolve_island(state, func, 10, numpy_stream(5))
        lo, hi = func.bounds
        assert (state.genomes >= lo).all() and (state.genomes <= hi).all()

    def test_merge_migrants_replaces_worst(self):
        state, _ = make_state()
        elite = np.zeros((2, 4))
        elite_fitness = np.array([-1.0, -2.0])
        merge_migrants(state, elite, elite_fitness)
        assert state.best_fitness == -2.0
        assert len(state.fitness) == 8  # population size preserved

    def test_merge_no_migrants_noop(self):
        state, _ = make_state()
        before = state.fitness.copy()
        merge_migrants(state, np.empty((0, 4)), np.empty(0))
        assert np.array_equal(state.fitness, before)

    def test_state_copy_is_independent(self):
        state, _ = make_state()
        clone = state.copy()
        clone.genomes[0, 0] = 12345.0
        assert state.genomes[0, 0] != 12345.0


class TestIslandGAProgram:
    def test_serial_bypass_mock_identical(self):
        logs = {}
        for impl in ("serial", "bypass", "mockparallel"):
            prog = run_program(IslandGA, GA_FLAGS, impl=impl)
            logs[impl] = [
                (r[0], r[1], r[3]) for r in prog.convergence
            ]
        assert logs["serial"] == logs["bypass"] == logs["mockparallel"]

    def test_fitness_monotone_nonincreasing(self):
        prog = run_program(IslandGA, GA_FLAGS, impl="serial")
        bests = [r[3] for r in prog.convergence]
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(bests, bests[1:]))

    def test_makes_progress(self):
        prog = run_program(IslandGA, GA_FLAGS, impl="serial")
        assert prog.convergence[-1][3] < prog.convergence[0][3]

    def test_best_genome_matches_fitness(self):
        prog = run_program(IslandGA, GA_FLAGS, impl="serial")
        func = get_function("sphere", 6)
        assert func(prog.best_genome) == pytest.approx(prog.best_fitness)

    def test_target_stop(self):
        prog = run_program(
            IslandGA, GA_FLAGS + ["--ga-target", "1e9"], impl="serial"
        )
        assert len(prog.convergence) <= 6

    def test_different_seed_different_run(self):
        a = run_program(IslandGA, GA_FLAGS, impl="serial")
        b = run_program(
            IslandGA, ["--mrs-seed", "32"] + GA_FLAGS[2:], impl="serial"
        )
        assert a.best_fitness != b.best_fitness
