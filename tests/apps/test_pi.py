"""Halton sequences and the PiEstimator (Fig 3 workload)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.pi.estimator import PiEstimator, estimate_pi_serial, split_samples
from repro.apps.pi.halton import HaltonSequence, radical_inverse, sample_inside
from repro.apps.pi.halton_numpy import count_inside_numpy, halton_points
from repro.core.main import run_program


class TestRadicalInverse:
    @pytest.mark.parametrize(
        "base,index,expected",
        [
            (2, 0, 0.0),
            (2, 1, 0.5),
            (2, 2, 0.25),
            (2, 3, 0.75),
            (3, 1, 1 / 3),
            (3, 2, 2 / 3),
            (3, 4, 4 / 9),
        ],
    )
    def test_known_values(self, base, index, expected):
        assert radical_inverse(base, index) == pytest.approx(expected)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            radical_inverse(2, -1)

    def test_values_in_unit_interval(self):
        for i in range(200):
            assert 0.0 <= radical_inverse(3, i) < 1.0


class TestHaltonSequence:
    def test_incremental_matches_direct(self):
        seq = HaltonSequence(0)
        for i in range(200):
            x, y = seq.next_point()
            assert x == pytest.approx(radical_inverse(2, i), abs=1e-14)
            assert y == pytest.approx(radical_inverse(3, i), abs=1e-14)

    def test_offset_start(self):
        seq = HaltonSequence(1000)
        x, y = seq.next_point()
        assert x == pytest.approx(radical_inverse(2, 1000), abs=1e-14)
        assert y == pytest.approx(radical_inverse(3, 1000), abs=1e-14)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            HaltonSequence(-1)

    def test_low_discrepancy_beats_clumping(self):
        """First 256 Halton points hit all 16 cells of a 4x4 grid —
        the even-coverage property the paper chose Halton for."""
        seq = HaltonSequence(0)
        cells = set()
        for _ in range(256):
            x, y = seq.next_point()
            cells.add((int(x * 4), int(y * 4)))
        assert len(cells) == 16


class TestKernels:
    def test_python_and_numpy_agree_exactly(self):
        assert sample_inside(0, 5000) == count_inside_numpy(0, 5000)

    def test_agreement_at_offsets(self):
        assert sample_inside(98765, 2000) == count_inside_numpy(98765, 2000)

    def test_chunking_invariant(self):
        whole = count_inside_numpy(0, 10_000, chunk=1 << 20)
        chunked = count_inside_numpy(0, 10_000, chunk=777)
        assert whole == chunked

    def test_halton_points_shape_and_range(self):
        x, y = halton_points(5, 100)
        assert x.shape == y.shape == (100,)
        assert (x >= 0).all() and (x < 1).all()
        assert (y >= 0).all() and (y < 1).all()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            sample_inside(0, -1)
        with pytest.raises(ValueError):
            count_inside_numpy(0, -1)

    def test_zero_count(self):
        assert sample_inside(0, 0) == (0, 0)


class TestSplitSamples:
    def test_covers_range_disjointly(self):
        ranges = split_samples(100, 7)
        assert sum(count for _, count in ranges) == 100
        position = 0
        for offset, count in ranges:
            assert offset == position
            position += count

    def test_remainder_distributed(self):
        counts = [c for _, c in split_samples(10, 3)]
        assert counts == [4, 3, 3]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_samples(10, 0)
        with pytest.raises(ValueError):
            split_samples(-1, 2)


class TestEstimator:
    def test_converges_to_pi(self):
        estimate = estimate_pi_serial(200_000, kernel="numpy")
        assert abs(estimate - math.pi) < 0.01

    def test_quasi_random_beats_noise_floor(self):
        """Halton error at n=1e5 should be far below the ~1/sqrt(n)
        pseudo-random Monte Carlo error."""
        estimate = estimate_pi_serial(100_000, kernel="numpy")
        assert abs(estimate - math.pi) < 3.0 / math.sqrt(100_000)

    def test_program_matches_serial_helper(self):
        prog = run_program(
            PiEstimator,
            ["--pi-samples", "50000", "--pi-tasks", "4", "--pi-kernel", "numpy"],
            impl="serial",
        )
        assert prog.pi_estimate == estimate_pi_serial(50_000, "numpy")

    def test_totals_recorded(self):
        prog = run_program(
            PiEstimator, ["--pi-samples", "1000", "--pi-tasks", "2"],
            impl="serial",
        )
        assert prog.total_samples == 1000
        assert 0 < prog.total_inside <= 1000


@given(st.integers(min_value=0, max_value=10**12))
@settings(max_examples=50)
def test_radical_inverse_range_property(index):
    assert 0.0 <= radical_inverse(2, index) < 1.0


@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=0, max_value=300),
)
@settings(max_examples=20, deadline=None)
def test_kernel_agreement_property(offset, count):
    assert sample_inside(offset, count) == count_inside_numpy(offset, count)


@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=1, max_value=64))
def test_split_samples_partition_property(total, tasks):
    ranges = split_samples(total, tasks)
    assert len(ranges) == tasks
    covered = [i for offset, count in ranges for i in range(offset, offset + count)]
    assert covered == list(range(total))
