"""Scheduler policies: activation, affinity, failure handling."""

import pytest

from repro.runtime.scheduler import ScheduledDataset, Scheduler, TaskState


def sched_ds(ds_id, ntasks=2, group=None, input_id="input", blocking=()):
    return ScheduledDataset(
        ds_id,
        ntasks=ntasks,
        affinity_group=group or ds_id,
        input_id=input_id,
        blocking_ids=blocking,
    )


@pytest.fixture
def scheduler():
    s = Scheduler()
    s.add_slave(1)
    s.add_slave(2)
    return s


class TestActivation:
    def test_not_runnable_until_input_complete(self, scheduler):
        scheduler.add_dataset(sched_ds("d1"))
        assert scheduler.next_task(1) is None
        scheduler.mark_input_complete("input")
        assert scheduler.next_task(1) == ("d1", 0)

    def test_input_complete_before_add(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1"))
        assert scheduler.next_task(1) is not None

    def test_blocking_ids_also_required(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", blocking=["other"]))
        assert scheduler.next_task(1) is None
        scheduler.mark_input_complete("other")
        assert scheduler.next_task(1) is not None

    def test_chained_activation(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        scheduler.add_dataset(sched_ds("d2", ntasks=1, input_id="d1"))
        task = scheduler.next_task(1)
        assert task == ("d1", 0)
        accepted, complete = scheduler.task_done(1, task)
        assert accepted and complete
        assert scheduler.next_task(1) == ("d2", 0)

    def test_duplicate_dataset_rejected(self, scheduler):
        scheduler.add_dataset(sched_ds("d1"))
        with pytest.raises(ValueError):
            scheduler.add_dataset(sched_ds("d1"))


class TestAssignment:
    def test_fifo_within_dataset(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=3))
        assert scheduler.next_task(1) == ("d1", 0)
        assert scheduler.next_task(2) == ("d1", 1)
        assert scheduler.next_task(1) == ("d1", 2)
        assert scheduler.next_task(2) is None

    def test_unknown_slave_rejected(self, scheduler):
        with pytest.raises(KeyError):
            scheduler.next_task(99)

    def test_progress(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        assert scheduler.progress("d1") == 0.0
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        assert scheduler.progress("d1") == 0.5


class TestCompletion:
    def test_stale_done_rejected(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        task = scheduler.next_task(1)
        accepted, _ = scheduler.task_done(2, task)  # wrong slave
        assert not accepted
        accepted, complete = scheduler.task_done(1, task)
        assert accepted and complete

    def test_double_done_rejected(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        accepted, _ = scheduler.task_done(1, task)
        assert not accepted

    def test_outstanding_counts(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        assert scheduler.outstanding() == 2
        scheduler.next_task(1)
        assert scheduler.outstanding() == 2  # pending + assigned
        scheduler.task_done(1, ("d1", 0))
        assert scheduler.outstanding() == 1


class TestAffinity:
    def _run_iteration(self, scheduler, ds_id, group="iter"):
        scheduler.add_dataset(sched_ds(ds_id, ntasks=2, group=group, input_id="input"))

    def test_affinity_prefers_previous_slave(self, scheduler):
        scheduler.mark_input_complete("input")
        self._run_iteration(scheduler, "it1")
        t0 = scheduler.next_task(1)
        t1 = scheduler.next_task(2)
        scheduler.task_done(1, t0)
        scheduler.task_done(2, t1)
        # Second iteration, same affinity group: slave 2 should get the
        # same task index it ran before, even though index 0 is first
        # in FIFO order.
        self._run_iteration(scheduler, "it2")
        assert scheduler.next_task(2) == ("it2", 1)
        assert scheduler.next_task(1) == ("it2", 0)

    def test_affinity_disabled(self):
        s = Scheduler(affinity=False)
        s.add_slave(1)
        s.add_slave(2)
        s.mark_input_complete("input")
        s.add_dataset(sched_ds("it1", ntasks=2, group="iter"))
        t0 = s.next_task(1)
        t1 = s.next_task(2)
        s.task_done(1, t0)
        s.task_done(2, t1)
        s.add_dataset(sched_ds("it2", ntasks=2, group="iter"))
        # FIFO order regardless of history.
        assert s.next_task(2) == ("it2", 0)

    def test_affinity_map_queryable(self, scheduler):
        scheduler.mark_input_complete("input")
        self._run_iteration(scheduler, "it1")
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        assert scheduler.affinity_slave("iter", task[1]) == 1


class TestLineageRecovery:
    def test_reset_tasks_requeues_done_work(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        for _ in range(2):
            task = scheduler.next_task(1)
            scheduler.task_done(1, task)
        assert scheduler.progress("d1") == 1.0
        reset = scheduler.reset_tasks("d1", [0, 1])
        assert reset == 2
        assert scheduler.progress("d1") == 0.0
        assert scheduler.next_task(2) is not None

    def test_reset_skips_assigned_and_pending(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=3))
        t0 = scheduler.next_task(1)
        scheduler.task_done(1, t0)  # t0 done; t1,t2 pending
        assert scheduler.reset_tasks("d1", [0, 1, 2]) == 1

    def test_unmark_complete_blocks_consumers(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("producer", ntasks=1))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        scheduler.add_dataset(
            sched_ds("consumer", ntasks=1, input_id="producer")
        )
        # Revoke the producer: the consumer's pending task becomes
        # ineligible even though it is queued.
        scheduler.unmark_complete("producer")
        assert scheduler.next_task(2) is None
        # Recompute the producer; the consumer becomes eligible again.
        scheduler.reset_tasks("producer", [0])
        redo = scheduler.next_task(2)
        assert redo == ("producer", 0)
        scheduler.task_done(2, redo)
        assert scheduler.next_task(1) == ("consumer", 0)

    def test_reset_unknown_dataset_is_noop(self, scheduler):
        assert scheduler.reset_tasks("ghost", [0]) == 0


class TestSlaveFailure:
    def test_assigned_tasks_return_to_pending(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        t0 = scheduler.next_task(1)
        reassigned = scheduler.remove_slave(1)
        assert t0 in reassigned
        # Slave 2 can now pick it up.
        assert scheduler.next_task(2) in [("d1", 0), ("d1", 1)]

    def test_dead_slave_affinity_forgotten(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("it1", ntasks=1, group="iter"))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        scheduler.remove_slave(1)
        assert scheduler.affinity_slave("iter", 0) is None

    def test_task_failed_requeues(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        task = scheduler.next_task(1)
        scheduler.task_failed(1, task)
        assert scheduler.next_task(2) == task

    def test_remove_unknown_slave_is_noop(self, scheduler):
        assert scheduler.remove_slave(99) == []
