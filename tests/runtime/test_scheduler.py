"""Scheduler policies: activation, affinity, failure handling."""

import pytest

from repro.runtime.scheduler import (
    ROUTING_IDENTITY,
    ScheduledDataset,
    Scheduler,
    TaskState,
)


def sched_ds(
    ds_id, ntasks=2, group=None, input_id="input", blocking=(), routing=None
):
    return ScheduledDataset(
        ds_id,
        ntasks=ntasks,
        affinity_group=group or ds_id,
        input_id=input_id,
        blocking_ids=blocking,
        routing=routing,
    )


@pytest.fixture
def scheduler():
    s = Scheduler()
    s.add_slave(1)
    s.add_slave(2)
    return s


class TestActivation:
    def test_not_runnable_until_input_complete(self, scheduler):
        scheduler.add_dataset(sched_ds("d1"))
        assert scheduler.next_task(1) is None
        scheduler.mark_input_complete("input")
        assert scheduler.next_task(1) == ("d1", 0)

    def test_input_complete_before_add(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1"))
        assert scheduler.next_task(1) is not None

    def test_blocking_ids_also_required(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", blocking=["other"]))
        assert scheduler.next_task(1) is None
        scheduler.mark_input_complete("other")
        assert scheduler.next_task(1) is not None

    def test_chained_activation(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        scheduler.add_dataset(sched_ds("d2", ntasks=1, input_id="d1"))
        task = scheduler.next_task(1)
        assert task == ("d1", 0)
        accepted, complete = scheduler.task_done(1, task)
        assert accepted and complete
        assert scheduler.next_task(1) == ("d2", 0)

    def test_duplicate_dataset_rejected(self, scheduler):
        scheduler.add_dataset(sched_ds("d1"))
        with pytest.raises(ValueError):
            scheduler.add_dataset(sched_ds("d1"))


class TestAssignment:
    def test_fifo_within_dataset(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=3))
        assert scheduler.next_task(1) == ("d1", 0)
        assert scheduler.next_task(2) == ("d1", 1)
        assert scheduler.next_task(1) == ("d1", 2)
        assert scheduler.next_task(2) is None

    def test_unknown_slave_rejected(self, scheduler):
        with pytest.raises(KeyError):
            scheduler.next_task(99)

    def test_progress(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        assert scheduler.progress("d1") == 0.0
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        assert scheduler.progress("d1") == 0.5


class TestCompletion:
    def test_stale_done_rejected(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        task = scheduler.next_task(1)
        accepted, _ = scheduler.task_done(2, task)  # wrong slave
        assert not accepted
        accepted, complete = scheduler.task_done(1, task)
        assert accepted and complete

    def test_double_done_rejected(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        accepted, _ = scheduler.task_done(1, task)
        assert not accepted

    def test_outstanding_counts(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        assert scheduler.outstanding() == 2
        scheduler.next_task(1)
        assert scheduler.outstanding() == 2  # pending + assigned
        scheduler.task_done(1, ("d1", 0))
        assert scheduler.outstanding() == 1


class TestAffinity:
    def _run_iteration(self, scheduler, ds_id, group="iter"):
        scheduler.add_dataset(sched_ds(ds_id, ntasks=2, group=group, input_id="input"))

    def test_affinity_prefers_previous_slave(self, scheduler):
        scheduler.mark_input_complete("input")
        self._run_iteration(scheduler, "it1")
        t0 = scheduler.next_task(1)
        t1 = scheduler.next_task(2)
        scheduler.task_done(1, t0)
        scheduler.task_done(2, t1)
        # Second iteration, same affinity group: slave 2 should get the
        # same task index it ran before, even though index 0 is first
        # in FIFO order.
        self._run_iteration(scheduler, "it2")
        assert scheduler.next_task(2) == ("it2", 1)
        assert scheduler.next_task(1) == ("it2", 0)

    def test_affinity_disabled(self):
        s = Scheduler(affinity=False)
        s.add_slave(1)
        s.add_slave(2)
        s.mark_input_complete("input")
        s.add_dataset(sched_ds("it1", ntasks=2, group="iter"))
        t0 = s.next_task(1)
        t1 = s.next_task(2)
        s.task_done(1, t0)
        s.task_done(2, t1)
        s.add_dataset(sched_ds("it2", ntasks=2, group="iter"))
        # FIFO order regardless of history.
        assert s.next_task(2) == ("it2", 0)

    def test_affinity_map_queryable(self, scheduler):
        scheduler.mark_input_complete("input")
        self._run_iteration(scheduler, "it1")
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        assert scheduler.affinity_slave("iter", task[1]) == 1


class TestLineageRecovery:
    def test_reset_tasks_requeues_done_work(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        for _ in range(2):
            task = scheduler.next_task(1)
            scheduler.task_done(1, task)
        assert scheduler.progress("d1") == 1.0
        reset = scheduler.reset_tasks("d1", [0, 1])
        assert reset == 2
        assert scheduler.progress("d1") == 0.0
        assert scheduler.next_task(2) is not None

    def test_reset_skips_assigned_and_pending(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=3))
        t0 = scheduler.next_task(1)
        scheduler.task_done(1, t0)  # t0 done; t1,t2 pending
        assert scheduler.reset_tasks("d1", [0, 1, 2]) == 1

    def test_unmark_complete_blocks_consumers(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("producer", ntasks=1))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        scheduler.add_dataset(
            sched_ds("consumer", ntasks=1, input_id="producer")
        )
        # Revoke the producer: the consumer's pending task becomes
        # ineligible even though it is queued.
        scheduler.unmark_complete("producer")
        assert scheduler.next_task(2) is None
        # Recompute the producer; the consumer becomes eligible again.
        scheduler.reset_tasks("producer", [0])
        redo = scheduler.next_task(2)
        assert redo == ("producer", 0)
        scheduler.task_done(2, redo)
        assert scheduler.next_task(1) == ("consumer", 0)

    def test_reset_unknown_dataset_is_noop(self, scheduler):
        assert scheduler.reset_tasks("ghost", [0]) == 0


class TestEmptyDatasets:
    def test_empty_dataset_completes_on_activation(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("empty", ntasks=0))
        assert scheduler.is_complete("empty")
        assert scheduler.progress("empty") == 1.0
        assert scheduler.take_completed_datasets() == ["empty"]

    def test_dependent_of_empty_dataset_activates(self, scheduler):
        """The verified repro: a zero-task dataset used to satisfy
        ``complete`` without ever entering ``_complete_ids`` (that only
        happened in ``task_done``, which never fires for it), so its
        dependents stalled forever."""
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("empty", ntasks=0))
        scheduler.add_dataset(sched_ds("d2", ntasks=1, input_id="empty"))
        assert scheduler.next_task(1) == ("d2", 0)

    def test_chain_of_empty_datasets_propagates(self, scheduler):
        scheduler.add_dataset(sched_ds("e1", ntasks=0))
        scheduler.add_dataset(sched_ds("e2", ntasks=0, input_id="e1"))
        scheduler.add_dataset(sched_ds("d", ntasks=1, input_id="e2"))
        assert scheduler.next_task(1) is None
        scheduler.mark_input_complete("input")
        assert scheduler.is_complete("e1")
        assert scheduler.is_complete("e2")
        assert set(scheduler.take_completed_datasets()) == {"e1", "e2"}
        assert scheduler.next_task(1) == ("d", 0)

    def test_empty_dataset_not_complete_before_activation(self, scheduler):
        scheduler.add_dataset(sched_ds("empty", ntasks=0))
        assert not scheduler.is_complete("empty")
        assert scheduler.progress("empty") == 0.0
        assert scheduler.take_completed_datasets() == []


class TestFailureAffinity:
    def test_failed_task_drops_affinity_entry(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("it1", ntasks=1, group="iter"))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        assert scheduler.affinity_slave("iter", 0) == 1
        scheduler.add_dataset(sched_ds("it2", ntasks=1, group="iter"))
        task = scheduler.next_task(1)
        scheduler.task_failed(1, task)
        assert scheduler.affinity_slave("iter", 0) is None

    def test_failing_slave_no_longer_prefers_its_failed_task(self, scheduler):
        """Without the fix the stale affinity entry steered the retry
        straight back to the slave it just failed on, ping-ponging
        until the failure budget burned."""
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("it1", ntasks=2, group="iter"))
        assert scheduler.next_task(2) == ("it1", 0)
        assert scheduler.next_task(1) == ("it1", 1)
        scheduler.task_done(2, ("it1", 0))
        scheduler.task_done(1, ("it1", 1))
        # Affinity now: task 0 -> slave 2, task 1 -> slave 1.
        scheduler.add_dataset(sched_ds("it2", ntasks=2, group="iter"))
        assert scheduler.next_task(1) == ("it2", 1)  # affinity match
        scheduler.task_failed(1, ("it2", 1))
        # The retry is no longer steered to slave 1; FIFO applies.
        assert scheduler.next_task(1) == ("it2", 0)

    def test_other_slaves_affinity_untouched_by_failure(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("it1", ntasks=1, group="iter"))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        scheduler.add_dataset(sched_ds("it2", ntasks=1, group="iter"))
        task = scheduler.next_task(1)
        # Slave 2 reports the failure (stale/foreign): entry survives.
        scheduler.task_failed(2, task)
        assert scheduler.affinity_slave("iter", 0) == 1


class TestRequeueOrdering:
    def _two_active_datasets(self):
        s = Scheduler(affinity=False)
        s.add_slave(1)
        s.add_slave(2)
        s.mark_input_complete("input")
        s.add_dataset(sched_ds("d1", ntasks=1))
        s.add_dataset(sched_ds("d2", ntasks=2))
        return s

    def test_failed_task_requeues_ahead_of_later_datasets(self):
        s = self._two_active_datasets()
        assert s.next_task(1) == ("d1", 0)
        assert s.next_task(2) == ("d2", 0)
        s.task_failed(1, ("d1", 0))
        # FIFO across datasets: the d1 retry outranks d2's queued work.
        assert s.next_task(2) == ("d1", 0)

    def test_remove_slave_requeues_in_dataset_order(self):
        s = self._two_active_datasets()
        assert s.next_task(1) == ("d1", 0)
        s.remove_slave(1)
        assert s.next_task(2) == ("d1", 0)

    def test_reset_tasks_requeues_in_dataset_order(self):
        s = self._two_active_datasets()
        assert s.next_task(1) == ("d1", 0)
        s.task_done(1, ("d1", 0))
        s.reset_tasks("d1", [0])
        assert s.next_task(2) == ("d1", 0)


def identity_pair(scheduler, ntasks=2):
    """A producer with identity routing and its pipelined consumer."""
    scheduler.mark_input_complete("input")
    scheduler.add_dataset(
        sched_ds("red", ntasks=ntasks, routing=ROUTING_IDENTITY)
    )
    scheduler.add_dataset(sched_ds("map2", ntasks=ntasks, input_id="red"))


class TestPipelining:
    def test_consumer_task_unblocks_on_its_source_commit(self, scheduler):
        identity_pair(scheduler)
        assert scheduler.next_task(1) == ("red", 0)
        assert scheduler.next_task(2) == ("red", 1)
        # Nothing from map2 is eligible yet: all of red is in flight.
        assert scheduler.next_task(1) is None
        scheduler.task_done(1, ("red", 0))
        # Source 0 committed: map2 task 0 dispatches while red is
        # still incomplete — that is a pipelined dispatch.
        assert scheduler.next_task(1) == ("map2", 0)
        assert scheduler.pipelined_dispatches == 1
        assert not scheduler.is_complete("red")
        scheduler.task_done(2, ("red", 1))
        assert scheduler.is_complete("red")
        assert scheduler.next_task(2) == ("map2", 1)
        # The second dispatch happened after red completed: not counted.
        assert scheduler.pipelined_dispatches == 1

    def test_commit_unblocks_only_matching_index(self, scheduler):
        identity_pair(scheduler)
        assert scheduler.next_task(1) == ("red", 0)
        assert scheduler.next_task(2) == ("red", 1)
        scheduler.task_done(2, ("red", 1))
        # Only map2 task 1 may run; task 0's bucket is uncommitted.
        assert scheduler.next_task(2) == ("map2", 1)
        assert scheduler.next_task(2) is None

    def test_unblocked_drain_names_enabling_bucket(self, scheduler):
        identity_pair(scheduler)
        scheduler.next_task(1)
        scheduler.next_task(2)
        assert scheduler.take_unblocked() == []
        scheduler.task_done(1, ("red", 0))
        assert scheduler.take_unblocked() == [
            {"task": ("map2", 0), "input_id": "red", "source": 0, "split": 0}
        ]
        # Drained once; no duplicates.
        assert scheduler.take_unblocked() == []

    def test_pipeline_off_keeps_dataset_barrier(self):
        s = Scheduler(pipeline=False)
        s.add_slave(1)
        s.add_slave(2)
        s.mark_input_complete("input")
        s.add_dataset(sched_ds("red", ntasks=2, routing=ROUTING_IDENTITY))
        s.add_dataset(sched_ds("map2", ntasks=2, input_id="red"))
        assert s.next_task(1) == ("red", 0)
        assert s.next_task(2) == ("red", 1)
        s.task_done(1, ("red", 0))
        assert s.next_task(1) is None  # barrier: wait for all of red
        s.task_done(2, ("red", 1))
        assert s.next_task(1) == ("map2", 0)
        assert s.pipelined_dispatches == 0

    def test_dense_routing_keeps_dataset_barrier(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("m", ntasks=2))  # dense routing
        scheduler.add_dataset(sched_ds("r", ntasks=2, input_id="m"))
        scheduler.next_task(1)
        scheduler.next_task(2)
        scheduler.task_done(1, ("m", 0))
        assert scheduler.next_task(1) is None
        assert scheduler.take_unblocked() == []

    def test_blockers_still_gate_pipelined_tasks(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(
            sched_ds("red", ntasks=1, routing=ROUTING_IDENTITY)
        )
        scheduler.add_dataset(
            sched_ds("map2", ntasks=1, input_id="red", blocking=["gate"])
        )
        scheduler.next_task(1)
        scheduler.task_done(1, ("red", 0))
        assert scheduler.next_task(1) is None  # blocker incomplete
        scheduler.mark_input_complete("gate")
        assert scheduler.next_task(1) == ("map2", 0)

    def test_reset_reblocks_exactly_revoked_consumers(self, scheduler):
        """Bucket-level lineage revocation: resetting producer task 0
        re-blocks only consumer task 0; the sibling committed source
        keeps its consumer eligible."""
        identity_pair(scheduler)
        scheduler.next_task(1)
        scheduler.next_task(2)
        scheduler.task_done(1, ("red", 0))
        scheduler.task_done(2, ("red", 1))
        assert scheduler.is_complete("red")
        # Slave 1's data died: revoke source 0 at both granularities.
        scheduler.unmark_complete("red")
        reset = scheduler.reset_tasks("red", [0])
        assert reset == 1
        # The producer's re-execution outranks (FIFO) the still-valid
        # consumer task 1; consumer task 0 is blocked again.
        assert scheduler.next_task(2) == ("red", 0)
        assert scheduler.next_task(2) == ("map2", 1)
        assert scheduler.next_task(2) is None
        # Recommitting source 0 unblocks consumer task 0 again.
        scheduler.task_done(2, ("red", 0))
        assert scheduler.next_task(2) == ("map2", 0)

    def test_no_duplicate_tasks_when_prequeued_dataset_activates(
        self, scheduler
    ):
        identity_pair(scheduler)
        scheduler.next_task(1)
        scheduler.next_task(2)
        scheduler.task_done(1, ("red", 0))
        scheduler.task_done(2, ("red", 1))  # activates map2 for real
        seen = []
        while True:
            task = scheduler.next_task(1)
            if task is None:
                break
            seen.append(task)
        assert seen == [("map2", 0), ("map2", 1)]

    def test_pipelined_consumer_completes_dataset(self, scheduler):
        identity_pair(scheduler)
        for slave, task in ((1, ("red", 0)), (2, ("red", 1))):
            assert scheduler.next_task(slave) == task
        scheduler.task_done(1, ("red", 0))
        assert scheduler.next_task(1) == ("map2", 0)
        accepted, complete = scheduler.task_done(1, ("map2", 0))
        assert accepted and not complete
        scheduler.task_done(2, ("red", 1))
        assert scheduler.next_task(2) == ("map2", 1)
        accepted, complete = scheduler.task_done(2, ("map2", 1))
        assert accepted and complete
        assert scheduler.is_complete("map2")


class TestSlaveFailure:
    def test_assigned_tasks_return_to_pending(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=2))
        t0 = scheduler.next_task(1)
        reassigned = scheduler.remove_slave(1)
        assert t0 in reassigned
        # Slave 2 can now pick it up.
        assert scheduler.next_task(2) in [("d1", 0), ("d1", 1)]

    def test_dead_slave_affinity_forgotten(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("it1", ntasks=1, group="iter"))
        task = scheduler.next_task(1)
        scheduler.task_done(1, task)
        scheduler.remove_slave(1)
        assert scheduler.affinity_slave("iter", 0) is None

    def test_task_failed_requeues(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=1))
        task = scheduler.next_task(1)
        scheduler.task_failed(1, task)
        assert scheduler.next_task(2) == task

    def test_remove_unknown_slave_is_noop(self, scheduler):
        assert scheduler.remove_slave(99) == []
