"""Resuming an iterative loop mid-stream under the multiprocess pool.

The paper's target workload is long iterative jobs that outlive a batch
scheduler's walltime; a checkpoint written every K iterations must let
a *fresh* pool pick up exactly where the dead one stopped.  The Rotate
program makes iteration count observable in the data, so a resume that
lost or repeated an iteration fails the equality check.
"""

from repro.core.job import Job
from repro.core.options import default_options
from repro.io.checkpoint import load_checkpoint, write_checkpoint
from repro.runtime.multiprocess import MultiprocessBackend
from repro.runtime.serial import SerialBackend

from tests.runtime.programs_mp import Rotate

INITIAL = [(0, 1), (1, 20), (2, 300), (3, 4000)]
TOTAL_ITERATIONS = 5
CHECKPOINT_AFTER = 2


def iterate(job, program, state, iterations):
    for _ in range(iterations):
        mapped = job.map_data(state, program.map, splits=2)
        state = job.reduce_data(mapped, program.reduce, splits=2)
    job.wait(state, timeout=60)
    return state


def test_resumed_run_matches_uninterrupted_serial(tmp_path):
    # Reference: all iterations in one serial job.
    program = Rotate(default_options(), [])
    job = Job(SerialBackend(program), program)
    state = job.local_data(INITIAL, splits=2)
    state = iterate(job, program, state, TOTAL_ITERATIONS)
    expected = sorted(state.data())

    # First pool: run part of the loop, checkpoint, die.
    opts = default_options(procs=2, tmpdir=str(tmp_path / "mp1"))
    program1 = Rotate(opts, [])
    backend1 = MultiprocessBackend(program1, opts, [])
    job1 = Job(backend1, program1)
    path = str(tmp_path / "ckpt")
    try:
        state1 = job1.local_data(INITIAL, splits=2)
        state1 = iterate(job1, program1, state1, CHECKPOINT_AFTER)
        write_checkpoint(path, state1)
    finally:
        backend1.close()

    # Second pool: restore and finish the remaining iterations.
    opts2 = default_options(procs=2, tmpdir=str(tmp_path / "mp2"))
    program2 = Rotate(opts2, [])
    backend2 = MultiprocessBackend(program2, opts2, [])
    job2 = Job(backend2, program2)
    try:
        restored = load_checkpoint(path, job2)
        state2 = iterate(
            job2, program2, restored, TOTAL_ITERATIONS - CHECKPOINT_AFTER
        )
        assert sorted(state2.data()) == expected
    finally:
        backend2.close()
