"""Serial and mock-parallel backend behaviour."""

import os

import pytest

from repro.core.job import Job, JobError
from repro.core.main import run_program
from repro.core.options import default_options
from repro.core.program import MapReduce
from repro.runtime.mockparallel import MockParallelBackend
from repro.runtime.serial import SerialBackend


class Tally(MapReduce):
    def map(self, key, value):
        yield (value % 3, 1)

    def reduce(self, key, values):
        yield sum(values)


def make_job(backend_cls, **kw):
    program = Tally(default_options(), [])
    backend = backend_cls(program, **kw)
    return Job(backend, program), program, backend


class TestSerialBackend:
    def test_runs_chain(self):
        job, p, _ = make_job(SerialBackend)
        src = job.local_data([(i, i) for i in range(9)], splits=3)
        out = job.reduce_data(job.map_data(src, p.map), p.reduce)
        job.wait(out)
        assert sorted(out.data()) == [(0, 3), (1, 3), (2, 3)]

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            job, p, _ = make_job(SerialBackend)
            src = job.local_data([(i, i) for i in range(20)], splits=4)
            out = job.reduce_data(job.map_data(src, p.map), p.reduce)
            job.wait(out)
            results.append(out.data())
        assert results[0] == results[1]

    def test_progress_tracks_tasks(self):
        job, p, backend = make_job(SerialBackend)
        src = job.local_data([(i, i) for i in range(4)], splits=4)
        mapped = job.map_data(src, p.map)
        assert backend.progress(mapped) == 0.0
        job.wait(mapped)
        assert backend.progress(mapped) == 1.0

    def test_output_dir_files(self, tmp_path):
        job, p, _ = make_job(SerialBackend)
        src = job.local_data([(i, i) for i in range(4)])
        out = job.reduce_data(
            job.map_data(src, p.map),
            p.reduce,
            outdir=str(tmp_path / "res"),
            format="txt",
        )
        job.wait(out)
        files = os.listdir(tmp_path / "res")
        assert files and all(f.endswith(".txt") for f in files)


class TestMockParallelBackend:
    def test_intermediate_data_hits_disk(self, tmp_path):
        job, p, backend = make_job(MockParallelBackend, tmpdir=str(tmp_path))
        src = job.local_data([(i, i) for i in range(6)], splits=2)
        mapped = job.map_data(src, p.map)
        job.wait(mapped)
        spill_dirs = os.listdir(tmp_path)
        assert spill_dirs, "mock parallel must write intermediate files"
        # In-memory copies are dropped; pairs only reachable via files.
        assert all(len(b) == 0 for b in mapped.existing_buckets())
        assert mapped.data()  # refetches through the files

    def test_matches_serial_output(self):
        job_s, p_s, _ = make_job(SerialBackend)
        src = job_s.local_data([(i, i) for i in range(12)], splits=3)
        out_s = job_s.reduce_data(job_s.map_data(src, p_s.map), p_s.reduce, splits=2)
        job_s.wait(out_s)

        job_m, p_m, _ = make_job(MockParallelBackend)
        src_m = job_m.local_data([(i, i) for i in range(12)], splits=3)
        out_m = job_m.reduce_data(job_m.map_data(src_m, p_m.map), p_m.reduce, splits=2)
        job_m.wait(out_m)
        assert sorted(out_s.data()) == sorted(out_m.data())

    def test_unpicklable_data_caught_by_mock_only(self):
        """The whole point of mockparallel: it surfaces serialization
        bugs that the pure in-memory serial run hides."""

        class Sneaky(MapReduce):
            def map(self, key, value):
                yield (key, lambda: None)  # unpicklable payload

            def reduce(self, key, values):
                yield list(values)

        # Serial: passes (objects stay in memory).
        program = Sneaky(default_options(), [])
        job = Job(SerialBackend(program), program)
        src = job.local_data([(0, 0)])
        mapped = job.map_data(src, program.map)
        job.wait(mapped)  # no error

        # Mock parallel: fails loudly.
        program2 = Sneaky(default_options(), [])
        job2 = Job(MockParallelBackend(program2), program2)
        src2 = job2.local_data([(0, 0)])
        mapped2 = job2.map_data(src2, program2.map)
        with pytest.raises(JobError):
            job2.wait(mapped2)

    def test_remove_data_deletes_spills(self, tmp_path):
        job, p, backend = make_job(MockParallelBackend, tmpdir=str(tmp_path))
        src = job.local_data([(i, i) for i in range(4)])
        mapped = job.map_data(src, p.map)
        job.wait(mapped)
        spill_dir = os.path.join(str(tmp_path), mapped.id)
        assert os.listdir(spill_dir)
        job.remove_data(mapped)
        assert not os.listdir(spill_dir)

    def test_default_splits_mimics_cluster(self):
        assert MockParallelBackend.default_splits > 1

    def test_wait_honors_timeout(self):
        """wait() must stop computing at the deadline and hand back the
        partial completion set, like the master's wait."""
        import time

        class Sleepy(MapReduce):
            def map(self, key, value):
                time.sleep(0.25)
                yield (key, value)

            def reduce(self, key, values):
                yield sum(values)

        program = Sleepy(default_options(), [])
        backend = MockParallelBackend(program)
        job = Job(backend, program)
        src = job.local_data([(0, 0)], splits=1)
        first = job.map_data(src, program.map, splits=1)
        second = job.map_data(first, program.map, splits=1)
        done = backend.wait([first, second], job, timeout=0.1)
        # The deadline expired after the first dataset's ~0.25 s task;
        # the second must not have been computed.
        assert done == [first]
        assert first.complete and not second.complete
        # A later unbounded wait finishes the queue.
        done = backend.wait([first, second], job, timeout=None)
        assert sorted(d.id for d in done) == sorted(
            [first.id, second.id]
        )

    def test_wait_expired_deadline_computes_nothing(self):
        program = Tally(default_options(), [])
        backend = MockParallelBackend(program)
        job = Job(backend, program)
        src = job.local_data([(i, i) for i in range(3)], splits=1)
        mapped = job.map_data(src, program.map, splits=1)
        assert backend.wait([mapped], job, timeout=0.0) == []
        assert not mapped.complete


class TestProfiling:
    def test_profile_dir_gets_per_task_dumps(self, tmp_path):
        """--mrs-profile writes a loadable .prof per task (section
        IV-B's profiling culture, made a one-flag affair)."""
        import pstats

        from repro.core.main import run_program
        from repro.apps.wordcount import WordCountCombined

        profile_dir = tmp_path / "profiles"
        input_file = tmp_path / "in.txt"
        input_file.write_text("a b c\n" * 50)
        run_program(
            WordCountCombined,
            [str(input_file), str(tmp_path / "out")],
            impl="serial",
            profile_dir=str(profile_dir),
        )
        dumps = list(profile_dir.glob("*.prof"))
        assert len(dumps) >= 2  # at least one map + one reduce task
        stats = pstats.Stats(str(dumps[0]))
        assert stats.total_calls > 0
