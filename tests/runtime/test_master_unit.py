"""MasterBackend internals, tested in-process without real slaves."""

import os

import pytest

from repro.core.dataset import LocalData
from repro.core.job import Job
from repro.core.options import default_options
from repro.core.program import MapReduce
from repro.runtime.master import MasterBackend


class Prog(MapReduce):
    def map(self, key, value):
        yield (key, value)

    def reduce(self, key, values):
        yield sum(values)


@pytest.fixture
def backend(tmp_path, monkeypatch):
    """A MasterBackend with auto-dispatch disabled: these tests drive
    the scheduler by hand, standing in for slave RPC traffic."""
    opts = default_options(tmpdir=str(tmp_path / "shared"))
    program = Prog(opts, [])
    backend = MasterBackend(program, opts)
    monkeypatch.setattr(backend, "_dispatch", lambda: None)
    yield backend, Job(backend, program)
    backend.close()


class TestSubmission:
    def test_submit_registers_with_scheduler(self, backend):
        b, job = backend
        source = job.local_data([(0, 1), (1, 2)], splits=2)
        mapped = job.map_data(source, b.program.map, splits=1)
        assert b.scheduler.is_complete(source.id)
        assert b.scheduler.outstanding() == 2  # two pending map tasks

    def test_default_splits_tracks_slaves(self, backend):
        b, _ = backend
        assert b.default_splits == 1  # no slaves yet
        b.slave_signin(1, "127.0.0.1:1")
        b.slave_signin(1, "127.0.0.1:2")
        assert b.default_splits == 2

    def test_reduce_tasks_option_overrides(self, tmp_path):
        opts = default_options(tmpdir=str(tmp_path), reduce_tasks=7)
        program = Prog(opts, [])
        b = MasterBackend(program, opts)
        try:
            assert b.default_splits == 7
        finally:
            b.close()


class TestDescriptors:
    def test_localdata_spilled_for_slaves(self, backend):
        b, job = backend
        source = job.local_data([(0, "x")], splits=1)
        mapped = job.map_data(source, b.program.map, splits=1)
        b.slave_signin(1, "127.0.0.1:9")  # no real slave listening
        with b._lock:
            task = b.scheduler.next_task(1)
            descriptor = b._build_descriptor(task)
        # LocalData bucket must now be backed by a real file.
        url = descriptor["input_urls"][0]
        assert url.startswith("file:")
        assert os.path.exists(url[len("file:"):])
        assert descriptor["dataset_id"] == mapped.id

    def test_user_output_descriptor(self, backend, tmp_path):
        b, job = backend
        source = job.local_data([(0, "x")], splits=1)
        out = job.map_data(
            source, b.program.map, splits=1,
            outdir=str(tmp_path / "user"), format="txt",
        )
        b.slave_signin(1, "127.0.0.1:9")
        with b._lock:
            task = b.scheduler.next_task(1)
            descriptor = b._build_descriptor(task)
        assert descriptor["user_output"] is True
        assert descriptor["format_ext"] == "txt"
        assert descriptor["outdir"].endswith("user")


class TestCompletionBookkeeping:
    def _setup_job(self, backend):
        b, job = backend
        source = job.local_data([(0, 1), (1, 2)], splits=2)
        mapped = job.map_data(source, b.program.map, splits=1)
        slave = b.slave_signin(1, "127.0.0.1:9")
        return b, job, mapped, slave

    def test_task_done_installs_buckets_and_stats(self, backend):
        b, job, mapped, slave = self._setup_job(backend)
        with b._lock:
            t0 = b.scheduler.next_task(slave)
            t1 = b.scheduler.next_task(slave)
        b.task_done(slave, mapped.id, t0[1], [(0, "file:/a")], seconds=0.5)
        assert not mapped.complete
        b.task_done(slave, mapped.id, t1[1], [(0, "file:/b")], seconds=0.25)
        assert mapped.complete
        stats = b.task_stats(mapped.id)
        assert stats["count"] == 2
        assert stats["total"] == pytest.approx(0.75)
        assert stats["max"] == pytest.approx(0.5)

    def test_stale_done_ignored(self, backend):
        b, job, mapped, slave = self._setup_job(backend)
        with b._lock:
            task = b.scheduler.next_task(slave)
        b.task_done(slave, mapped.id, task[1], [(0, "file:/a")])
        before = len(mapped.existing_buckets())
        # Duplicate report: rejected, no duplicate bucket.
        b.task_done(slave, mapped.id, task[1], [(0, "file:/dup")])
        assert len(mapped.existing_buckets()) == before

    def test_unknown_dataset_done_is_noop(self, backend):
        b, job, mapped, slave = self._setup_job(backend)
        b.task_done(slave, "ghost", 0, [])


class TestFailurePropagation:
    def test_failure_cascades_to_dependents(self, backend):
        b, job = backend
        source = job.local_data([(0, 1)], splits=1)
        mapped = job.map_data(source, b.program.map, splits=1)
        reduced = job.reduce_data(mapped, b.program.reduce, splits=1)
        final = job.reduce_data(reduced, b.program.reduce, splits=1)
        slave = b.slave_signin(1, "127.0.0.1:9")
        for _ in range(3):  # burn the whole failure budget
            with b._lock:
                task = b.scheduler.next_task(slave)
            if task is None:
                break
            b.task_failed(slave, task[0], task[1], "boom")
        assert mapped.error
        assert reduced.error and "failed" in reduced.error
        assert final.error

    def test_fetch_error_during_recovery_is_free(self, backend):
        b, job = backend
        source = job.local_data([(0, 1)], splits=1)
        mapped = job.map_data(source, b.program.map, splits=1)
        reduced = job.reduce_data(mapped, b.program.reduce, splits=1)
        slave = b.slave_signin(1, "127.0.0.1:9")
        # Pretend the map finished, then got revoked (input incomplete).
        with b._lock:
            task = b.scheduler.next_task(slave)
        b.task_done(slave, mapped.id, task[1], [(0, "http://dead:1/x")])
        mapped.complete = False
        with b._lock:
            b.scheduler.unmark_complete(mapped.id)
        # Fetch failures on the reduce must not count strikes.
        for _ in range(10):
            b.task_failed(slave, reduced.id, 0, "FetchError('gone')")
        assert reduced.error is None


class TestLifecycle:
    def test_runfile_written_and_removed(self, tmp_path):
        runfile = str(tmp_path / "master.run")
        opts = default_options(tmpdir=str(tmp_path / "t"), runfile=runfile)
        program = Prog(opts, [])
        b = MasterBackend(program, opts)
        host, port = open(runfile).read().strip().rsplit(":", 1)
        assert int(port) == b.rpc.port
        b.close()
        assert not os.path.exists(runfile)

    def test_close_idempotent(self, tmp_path):
        opts = default_options(tmpdir=str(tmp_path))
        b = MasterBackend(Prog(opts, []), opts)
        b.close()
        b.close()

    def test_lose_unknown_slave_is_noop(self, backend):
        b, _ = backend
        b.lose_slave(999, "never existed")


class TestStatus:
    def test_status_snapshot(self, backend):
        b, job = backend
        source = job.local_data([(0, 1)], splits=1)
        mapped = job.map_data(source, b.program.map, splits=1)
        b.slave_signin(1, "127.0.0.1:9")
        status = b.status()
        assert status["outstanding_tasks"] == 1
        assert len(status["slaves"]) == 1
        ids = {d["id"] for d in status["datasets"]}
        assert mapped.id in ids
        assert status["data_plane"] == "file"

    def test_status_over_rpc(self, backend):
        from repro.comm.rpc import rpc_client

        b, _ = backend
        status = rpc_client(b.rpc.address).status()
        assert status["address"] == b.rpc.address


class TestTimeoutOption:
    def test_wait_honors_mrs_timeout(self, tmp_path):
        """--mrs-timeout caps a wait that would otherwise hang (no
        slaves will ever finish this task)."""
        import time as _time

        opts = default_options(tmpdir=str(tmp_path), timeout=0.3)
        program = Prog(opts, [])
        b = MasterBackend(program, opts)
        try:
            job = Job(b, program)
            source = job.local_data([(0, 1)], splits=1)
            mapped = job.map_data(source, program.map, splits=1)
            started = _time.monotonic()
            done = job.wait(mapped)
            elapsed = _time.monotonic() - started
            assert done == []
            assert elapsed < 5.0
        finally:
            b.close()

    def test_explicit_timeout_overrides_default(self, tmp_path):
        import time as _time

        opts = default_options(tmpdir=str(tmp_path), timeout=60.0)
        program = Prog(opts, [])
        b = MasterBackend(program, opts)
        try:
            job = Job(b, program)
            source = job.local_data([(0, 1)], splits=1)
            mapped = job.map_data(source, program.map, splits=1)
            started = _time.monotonic()
            job.wait(mapped, timeout=0.2)
            assert _time.monotonic() - started < 5.0
        finally:
            b.close()
