"""Multiprocess worker-pool backend behaviour.

Covers the new-runtime acceptance bar: byte-identical output vs the
serial implementation, both start methods, worker-crash recovery, and
exactly-once metrics accounting across the pool.
"""

import multiprocessing
import os

import pytest

from repro.core.job import Job
from repro.core.main import run_program
from repro.core.options import default_options
from repro.runtime.multiprocess import MultiprocessBackend

from tests.runtime.programs_mp import CrashOnce, Tally

START_METHODS = sorted(
    set(multiprocessing.get_all_start_methods()) & {"fork", "spawn"}
)


def make_backend(program_cls, opts_overrides=None, args=()):
    opts = default_options(**(opts_overrides or {}))
    program = program_cls(opts, list(args))
    backend = MultiprocessBackend(program, opts, list(args))
    return Job(backend, program), program, backend


def output_by_key(directory):
    """Map visible output files keyed by their ``source_split.ext``
    suffix (the dataset-id prefix differs between runs)."""
    out = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith("."):
            continue
        stem, ext = os.path.splitext(name)
        key = ("_".join(stem.split("_")[-2:]), ext)
        with open(os.path.join(directory, name), "rb") as f:
            out[key] = f.read()
    return out


class TestEquivalence:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_wordcount_byte_identical_to_serial(
        self, tmp_path, start_method
    ):
        from repro.apps.wordcount import WordCount

        input_file = tmp_path / "in.txt"
        input_file.write_text(
            "the quick brown fox jumps over the lazy dog\n"
            "the dog sleeps while the fox runs\n" * 10
        )
        serial_out = tmp_path / "serial_out"
        mp_out = tmp_path / "mp_out"
        run_program(
            WordCount,
            [str(input_file), str(serial_out)],
            impl="serial",
            reduce_tasks=2,
        )
        run_program(
            WordCount,
            [str(input_file), str(mp_out)],
            impl="multiprocess",
            reduce_tasks=2,
            procs=4,
            start_method=start_method,
        )
        serial_files = output_by_key(serial_out)
        mp_files = output_by_key(mp_out)
        assert serial_files, "serial run produced no output"
        assert mp_files.keys() == serial_files.keys()
        for key, payload in serial_files.items():
            assert mp_files[key] == payload, f"output {key} differs"

    def test_chain_results(self, tmp_path):
        job, p, backend = make_backend(
            Tally, {"procs": 2, "tmpdir": str(tmp_path / "mp")}
        )
        try:
            src = job.local_data([(i, i) for i in range(9)], splits=3)
            out = job.reduce_data(job.map_data(src, p.map), p.reduce, splits=2)
            job.wait(out, timeout=60)
            assert sorted(out.data()) == [(0, 3), (1, 3), (2, 3)]
        finally:
            backend.close()

    def test_default_splits_is_pool_size(self):
        job, p, backend = make_backend(Tally, {"procs": 3})
        try:
            assert backend.default_splits == 3
        finally:
            backend.close()


class TestFaultTolerance:
    def test_sigkilled_worker_task_is_requeued(self, tmp_path):
        """A worker killed mid-task is reaped, its task retried on a
        replacement, and the job still completes."""
        marker = tmp_path / "crashed_once"
        job, p, backend = make_backend(
            CrashOnce,
            {"procs": 2, "tmpdir": str(tmp_path / "mp")},
            args=[str(marker)],
        )
        try:
            src = job.local_data([(i, 1) for i in range(6)], splits=3)
            mapped = job.map_data(src, p.map, splits=2)
            reduced = job.reduce_data(mapped, p.reduce, splits=1)
            job.wait(reduced, timeout=60)
            assert marker.exists(), "the crash path never ran"
            assert reduced.complete
            assert sorted(reduced.data()) == [(0, 3), (1, 3)]
            counters = backend.metrics()["metrics"]["counters"]
            assert counters["workers.lost"] >= 1
        finally:
            backend.close()

    def test_poison_task_fails_dataset_not_job(self, tmp_path):
        """A task that kills every worker that touches it exhausts the
        failure budget and errors the dataset instead of hanging."""
        from repro.core.job import JobError
        from repro.runtime.failures import MAX_TASK_FAILURES

        job, p, backend = make_backend(
            CrashOnce,
            {"procs": 1, "tmpdir": str(tmp_path / "mp")},
            # "always": the map crashes on every attempt at key 0.
            args=[str(tmp_path / "marker"), "always"],
        )
        try:
            src = job.local_data([(0, 1)], splits=1)
            mapped = job.map_data(src, p.map, splits=1)
            with pytest.raises(JobError):
                job.wait(mapped, timeout=120)
            assert mapped.error
            counters = backend.metrics()["metrics"]["counters"]
            assert counters["workers.lost"] >= MAX_TASK_FAILURES
        finally:
            backend.close()


class TestMetrics:
    def test_pool_metrics_count_each_task_exactly_once(self, tmp_path):
        job, p, backend = make_backend(
            Tally, {"procs": 2, "tmpdir": str(tmp_path / "mp")}
        )
        try:
            src = job.local_data([(i, i) for i in range(8)], splits=4)
            mapped = job.map_data(src, p.map, splits=2)
            reduced = job.reduce_data(mapped, p.reduce, splits=2)
            job.wait(reduced, timeout=60)
            report = backend.metrics()
            total_tasks = 4 + 2  # map tasks + reduce tasks
            counters = report["metrics"]["counters"]
            assert counters["tasks.completed"] == total_tasks
            assert counters["worker.tasks.completed"] == total_tasks
            # The per-worker breakdown partitions the same total.
            per_worker = [
                source["counters"].get("worker.tasks.completed", 0)
                for source in report["sources"].values()
            ]
            assert sum(per_worker) == total_tasks
            assert report["role"] == "multiprocess"
            # Piggybacked phase durations made it into the phase timer.
            assert report["phases"].get("map", 0) >= 0
        finally:
            backend.close()
