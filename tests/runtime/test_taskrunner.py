"""Task execution semantics: map, reduce, reducemap, combiner, errors."""

import os

import pytest

from repro.core.dataset import (
    LocalData,
    make_map_data,
    make_reduce_data,
    make_reducemap_data,
)
from repro.core.operations import MapOperation, ReduceOperation
from repro.core.options import default_options
from repro.core.program import MapReduce
from repro.io.bucket import Bucket
from repro.runtime import taskrunner


class Wordy(MapReduce):
    combine_calls = 0

    def map(self, key, value):
        for word in value.split():
            yield (word, 1)

    def reduce(self, key, values):
        yield sum(values)

    def counting_combine(self, key, values):
        type(self).combine_calls += 1
        yield sum(values)

    def swap_map(self, key, value):
        yield (value, key)

    def bad_pairs_map(self, key, value):
        yield "not-a-pair"

    def bad_parter(self, key, n_splits):
        return n_splits + 5

    def exploding_map(self, key, value):
        raise ZeroDivisionError("boom")


@pytest.fixture
def program():
    Wordy.combine_calls = 0
    return Wordy(default_options(), [])


def input_bucket(pairs):
    bucket = Bucket(0, 0)
    bucket.collect(pairs)
    return bucket


class TestMapTask:
    def test_basic_map_and_partition(self, program):
        op = MapOperation("map", splits=2)
        out = taskrunner.run_map_task(
            program,
            op,
            [(0, "a b a")],
            taskrunner.memory_bucket_factory(0),
        )
        assert len(out) == 2
        all_pairs = sorted(p for b in out for p in b)
        assert all_pairs == [("a", 1), ("a", 1), ("b", 1)]

    def test_same_key_same_bucket(self, program):
        op = MapOperation("map", splits=4)
        out = taskrunner.run_map_task(
            program, op, [(0, "x x x")], taskrunner.memory_bucket_factory(0)
        )
        non_empty = [b for b in out if len(b)]
        assert len(non_empty) == 1

    def test_combiner_shrinks_output(self, program):
        op = MapOperation("map", splits=1, combine_name="counting_combine")
        out = taskrunner.run_map_task(
            program, op, [(0, "w w w w")], taskrunner.memory_bucket_factory(0)
        )
        assert list(out[0]) == [("w", 4)]
        assert Wordy.combine_calls == 1

    def test_map_yielding_non_pair_rejected(self, program):
        op = MapOperation("bad_pairs_map", splits=1)
        with pytest.raises(taskrunner.TaskError, match="yield"):
            taskrunner.run_map_task(
                program, op, [(0, "x")], taskrunner.memory_bucket_factory(0)
            )

    def test_out_of_range_partition_rejected(self, program):
        op = MapOperation("map", splits=2, parter_name="bad_parter")
        with pytest.raises(taskrunner.TaskError, match="outside"):
            taskrunner.run_map_task(
                program, op, [(0, "x")], taskrunner.memory_bucket_factory(0)
            )


class TestReduceTask:
    def test_groups_merged_across_buckets(self, program):
        op = ReduceOperation("reduce", splits=1)
        b1 = input_bucket([("a", 1), ("b", 1)])
        b2 = input_bucket([("a", 2)])
        out = taskrunner.run_reduce_task(
            program, op, [b1, b2], taskrunner.memory_bucket_factory(0)
        )
        assert sorted(out[0]) == [("a", 3), ("b", 1)]

    def test_reduce_sees_sorted_keys(self, program):
        seen = []

        class Spy(Wordy):
            def reduce(self, key, values):
                seen.append(key)
                yield sum(values)

        spy = Spy(default_options(), [])
        op = ReduceOperation("reduce", splits=1)
        bucket = input_bucket([("z", 1), ("a", 1), ("m", 1)])
        taskrunner.run_reduce_task(
            spy, op, [bucket], taskrunner.memory_bucket_factory(0)
        )
        assert seen == ["a", "m", "z"]


class TestExecuteTask:
    def run_one(self, program, dataset, input_dataset, task_index=0):
        buckets = taskrunner.materialize_input_buckets(input_dataset, task_index)
        return taskrunner.execute_task(program, dataset, task_index, buckets)

    def test_dispatch_map(self, program):
        source = LocalData([(0, "a b")])
        ds = make_map_data(source, "map", splits=1)
        out = self.run_one(program, ds, source)
        assert sorted(out[0]) == [("a", 1), ("b", 1)]

    def test_dispatch_reducemap(self, program):
        source = LocalData([("k", 1), ("k", 2)])
        ds = make_reducemap_data(source, "reduce", "swap_map", splits=1)
        out = self.run_one(program, ds, source)
        assert list(out[0]) == [(3, "k")]

    def test_user_exception_wrapped_with_context(self, program):
        source = LocalData([(0, "x")])
        ds = make_map_data(source, "exploding_map", splits=1)
        with pytest.raises(taskrunner.TaskError) as excinfo:
            self.run_one(program, ds, source)
        assert "exploding_map" in str(excinfo.value) or "task 0" in str(excinfo.value)
        assert isinstance(excinfo.value.cause, ZeroDivisionError)


class TestFileBucketFactory:
    def test_writes_files_with_expected_names(self, program, tmp_path):
        factory = taskrunner.file_bucket_factory(
            str(tmp_path), "ds1", source=2, ext="mrsb"
        )
        op = MapOperation("map", splits=2)
        out = taskrunner.run_map_task(program, op, [(0, "a b")], factory)
        names = sorted(os.listdir(tmp_path))
        assert names == ["ds1_2_0.mrsb", "ds1_2_1.mrsb"]
        assert all(b.url.startswith("file:") for b in out)

    def test_empty_buckets_still_create_files(self, program, tmp_path):
        factory = taskrunner.file_bucket_factory(str(tmp_path), "ds2", 0)
        op = MapOperation("map", splits=3)
        taskrunner.run_map_task(program, op, [], factory)
        assert len(os.listdir(tmp_path)) == 3

    def test_sidecar_for_lossy_user_format(self, program, tmp_path):
        factory = taskrunner.file_bucket_factory(
            str(tmp_path), "out", 0, ext="txt", sidecar=True
        )
        op = MapOperation("map", splits=1)
        out = taskrunner.run_map_task(program, op, [(0, "hi")], factory)
        assert out[0].url.endswith(".mrsb")
        visible = [n for n in os.listdir(tmp_path) if not n.startswith(".")]
        assert visible == ["out_0_0.txt"]

    def test_no_sidecar_for_lossless_format(self, program, tmp_path):
        factory = taskrunner.file_bucket_factory(
            str(tmp_path), "out", 0, ext="mrsb", sidecar=True
        )
        op = MapOperation("map", splits=1)
        out = taskrunner.run_map_task(program, op, [(0, "hi")], factory)
        assert os.listdir(tmp_path) == ["out_0_0.mrsb"]


class TestBucketsFromUrls:
    def test_fetch_and_index(self, tmp_path):
        from repro.io.bucket import FileBucket

        path = str(tmp_path / "b.mrsb")
        fb = FileBucket(path)
        fb.addpair(("x", 1))
        fb.close_writer()
        buckets = taskrunner.buckets_from_urls(["file:" + path], split=3)
        assert buckets[0].split == 3
        assert list(buckets[0]) == [("x", 1)]
