"""Fair-share scheduling across job namespaces (service mode).

The scheduler round-robins between job ids at ``next_task``
granularity; within the chosen job the classic policies (FIFO order,
affinity preference) are unchanged, and with a single job the fair
path must degenerate to exactly the classic scan.
"""

import pytest

from repro.runtime.scheduler import ScheduledDataset, Scheduler


def sched_ds(ds_id, ntasks=2, group=None, input_id="input", job=None):
    return ScheduledDataset(
        ds_id,
        ntasks=ntasks,
        affinity_group=group or ds_id,
        input_id=input_id,
        job_id=job,
    )


@pytest.fixture
def scheduler():
    s = Scheduler()
    s.add_slave(1)
    s.add_slave(2)
    return s


class TestFairShare:
    def test_round_robin_across_two_jobs(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("job-a.map_1", ntasks=3, job="job-a"))
        scheduler.add_dataset(sched_ds("job-b.map_1", ntasks=3, job="job-b"))
        order = [scheduler.next_task(1)[0] for _ in range(6)]
        assert order == [
            "job-a.map_1",
            "job-b.map_1",
            "job-a.map_1",
            "job-b.map_1",
            "job-a.map_1",
            "job-b.map_1",
        ]

    def test_big_job_cannot_starve_late_small_job(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("job-a.map_1", ntasks=10, job="job-a"))
        assert scheduler.next_task(1)[0] == "job-a.map_1"
        # A small job arriving mid-burst is served on the very next pick.
        scheduler.add_dataset(sched_ds("job-b.map_1", ntasks=1, job="job-b"))
        assert scheduler.next_task(2)[0] == "job-b.map_1"
        assert scheduler.next_task(1)[0] == "job-a.map_1"

    def test_single_job_matches_classic_fifo(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1", ntasks=3))
        scheduler.add_dataset(sched_ds("d2", ntasks=1))
        assert scheduler.next_task(1) == ("d1", 0)
        assert scheduler.next_task(2) == ("d1", 1)
        assert scheduler.next_task(1) == ("d1", 2)
        assert scheduler.next_task(2) == ("d2", 0)
        assert scheduler.next_task(1) is None

    def test_exhausted_job_yields_to_the_other(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("job-a.map_1", ntasks=1, job="job-a"))
        scheduler.add_dataset(sched_ds("job-b.map_1", ntasks=3, job="job-b"))
        assert scheduler.next_task(1)[0] == "job-a.map_1"
        # job-a has nothing left; every further pick is job-b.
        assert scheduler.next_task(1)[0] == "job-b.map_1"
        assert scheduler.next_task(2)[0] == "job-b.map_1"

    def test_dispatch_counts_per_job(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("job-a.map_1", ntasks=2, job="job-a"))
        scheduler.add_dataset(sched_ds("job-b.map_1", ntasks=2, job="job-b"))
        for _ in range(4):
            scheduler.next_task(1)
        assert scheduler.job_dispatches == {"job-a": 2, "job-b": 2}

    def test_affinity_respected_within_chosen_job(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(
            sched_ds("job-a.r_1", ntasks=2, group="job-a.iter", job="job-a")
        )
        # Establish affinity: slave 1 does split 0, slave 2 split 1.
        t0 = scheduler.next_task(1)
        t1 = scheduler.next_task(2)
        scheduler.task_done(1, t0)
        scheduler.task_done(2, t1)
        # Next iteration of the same (namespaced) affinity group: each
        # slave is steered to the split it already holds data for.
        scheduler.add_dataset(
            sched_ds(
                "job-a.r_2",
                ntasks=2,
                group="job-a.iter",
                input_id="job-a.r_1",
                job="job-a",
            )
        )
        assert scheduler.next_task(2) == ("job-a.r_2", 1)
        assert scheduler.next_task(1) == ("job-a.r_2", 0)


class TestForgetDataset:
    def test_forgotten_dataset_stops_dispatching(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("job-a.map_1", ntasks=3, job="job-a"))
        task = scheduler.next_task(1)
        scheduler.forget_dataset("job-a.map_1")
        assert scheduler.next_task(2) is None
        # A late completion for the abandoned assignment is stale.
        accepted, _ = scheduler.task_done(1, task)
        assert not accepted

    def test_forget_allows_reregistration(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("d1"))
        scheduler.forget_dataset("d1")
        scheduler.add_dataset(sched_ds("d1"))  # no duplicate error
        assert scheduler.next_task(1) == ("d1", 0)

    def test_forget_leaves_other_jobs_untouched(self, scheduler):
        scheduler.mark_input_complete("input")
        scheduler.add_dataset(sched_ds("job-a.map_1", ntasks=2, job="job-a"))
        scheduler.add_dataset(sched_ds("job-b.map_1", ntasks=2, job="job-b"))
        scheduler.forget_dataset("job-a.map_1")
        picks = {scheduler.next_task(1)[0], scheduler.next_task(2)[0]}
        assert picks == {"job-b.map_1"}

    def test_forget_unknown_is_noop(self, scheduler):
        scheduler.forget_dataset("ghost")
