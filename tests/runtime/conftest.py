"""Shared runtime-test fixtures.

The autouse teardown assertion here is the spill-file hygiene
backstop: any backend-owned temp directory (``mrs_master_*``,
``mrs_slave_*``, ``mrs_mp_*``, ``mrs_mockp_*``, ``mrs_cluster_*``)
created during a test must be gone when the test ends — a leftover one
means a ``close()``/``shutdown()`` path leaked FileBucket spill files
(the bug class behind cancel-mid-merge leaks).
"""

import glob
import os
import shutil
import tempfile

import pytest

#: mkdtemp prefixes owned by backends, masters, slaves, and clusters.
#: mrs_mockp_ is deliberately absent: mockparallel outputs are read
#: *after* close() (run_program's contract), so its owned tmpdir lives
#: until interpreter exit (reclaimed via atexit).
_BACKEND_PREFIXES = (
    "mrs_master_",
    "mrs_slave_",
    "mrs_mp_",
    "mrs_cluster_",
)


def _backend_tmpdirs():
    base = tempfile.gettempdir()
    found = set()
    for prefix in _BACKEND_PREFIXES:
        found.update(glob.glob(os.path.join(base, prefix + "*")))
    return found


@pytest.fixture(autouse=True)
def assert_no_tmpdir_leak():
    """Fail any test that leaves a backend-owned tmpdir behind."""
    before = _backend_tmpdirs()
    yield
    leaked = sorted(_backend_tmpdirs() - before)
    # Clean up before failing so one leak cannot cascade into
    # unrelated failures later in the session.
    for path in leaked:
        shutil.rmtree(path, ignore_errors=True)
    assert not leaked, f"backend-owned tmpdirs leaked: {leaked}"
