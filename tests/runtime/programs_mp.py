"""Programs used by multiprocess-runtime tests.

These live in an importable module (not a test body) because the spawn
start method pickles the program class *by reference*: worker processes
must be able to ``import tests.runtime.programs_mp`` and look the class
up again.
"""

import os
import signal

import repro as mrs


class Tally(mrs.MapReduce):
    """Small deterministic two-stage program."""

    def map(self, key, value):
        yield (value % 3, 1)

    def reduce(self, key, values):
        yield sum(values)


class Rotate(mrs.MapReduce):
    """One iteration rotates every value to the next key.

    The state after ``k`` iterations depends on ``k`` (modulo
    ``nkeys``), so a resumed run that silently lost or repeated an
    iteration produces a different answer — exactly what the
    checkpoint-resumption tests need to detect.
    """

    nkeys = 4

    def map(self, key, value):
        yield ((key + 1) % self.nkeys, value)

    def reduce(self, key, values):
        yield sum(values)


class CrashOnce(mrs.MapReduce):
    """Map that SIGKILLs its own worker process on the first attempt.

    The first positional argument is a marker-file path shared through
    the filesystem (a class attribute cannot guard across processes):
    the first worker to see key 0 creates the marker and dies without
    any chance to report, exercising the pool's liveness sweep, task
    requeue, and respawn paths.
    """

    def map(self, key, value):
        marker = self.args[0]
        always = len(self.args) > 1 and self.args[1] == "always"
        if key == 0 and (always or not os.path.exists(marker)):
            if not always:
                with open(marker, "w"):
                    pass
            os.kill(os.getpid(), signal.SIGKILL)
        yield (key % 2, value)

    def reduce(self, key, values):
        yield sum(values)
