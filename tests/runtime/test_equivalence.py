"""Cross-implementation equivalence — the paper's own debugging
methodology (section IV-A): "A program's master/slave, serial, mock
parallel, and bypass implementations should all produce identical
answers.  Differences ... indicate a bug in the program or possibly in
Mrs."  (The master/slave leg lives in tests/integration.)
"""

import collections

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.kmeans import KMeans
from repro.apps.pi.estimator import PiEstimator
from repro.apps.pso.mrpso import ApiaryPSO
from repro.apps.wordcount import (
    WordCount,
    WordCountCombined,
    WordCountWithBypass,
    output_counts,
)
from repro.core.main import run_program

LOCAL_IMPLS = ("serial", "mockparallel")


class TestWordCountEquivalence:
    @pytest.mark.parametrize("impl", LOCAL_IMPLS)
    def test_combined_matches_plain(self, impl, text_file, tmp_path):
        plain = run_program(
            WordCount, [text_file, str(tmp_path / "a")], impl=impl
        )
        combined = run_program(
            WordCountCombined, [text_file, str(tmp_path / "b")], impl=impl
        )
        assert output_counts(plain) == output_counts(combined)

    def test_all_local_impls_agree(self, small_corpus, tmp_path):
        root, _ = small_corpus
        results = {}
        for impl in LOCAL_IMPLS:
            prog = run_program(
                WordCountWithBypass, [root, str(tmp_path / impl)], impl=impl
            )
            results[impl] = output_counts(prog)
        bypass = run_program(
            WordCountWithBypass, [root, str(tmp_path / "byp")], impl="bypass"
        )
        results["bypass"] = bypass.bypass_counts
        first = results.pop("serial")
        for impl, counts in results.items():
            assert counts == first, f"{impl} diverged from serial"


class TestPiEquivalence:
    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_serial_mock_bypass_identical(self, kernel):
        estimates = {}
        for impl in (*LOCAL_IMPLS, "bypass"):
            prog = run_program(
                PiEstimator,
                ["--pi-samples", "30000", "--pi-tasks", "5",
                 "--pi-kernel", kernel],
                impl=impl,
            )
            estimates[impl] = (prog.pi_estimate, prog.total_inside)
        assert len(set(estimates.values())) == 1

    def test_task_count_does_not_change_answer(self):
        """Halton indices are split by offset, so the union over tasks
        is independent of the task count."""
        results = {
            tasks: run_program(
                PiEstimator,
                ["--pi-samples", "20000", "--pi-tasks", str(tasks)],
                impl="serial",
            ).total_inside
            for tasks in (1, 3, 8)
        }
        assert len(set(results.values())) == 1


PSO_FLAGS = [
    "--mrs-seed", "11", "--pso-function", "sphere", "--pso-dims", "8",
    "--pso-subswarms", "3", "--pso-particles", "4", "--pso-inner", "4",
    "--pso-outer", "6",
]


class TestPsoEquivalence:
    def test_stochastic_algorithm_identical_everywhere(self):
        logs = {}
        for impl in (*LOCAL_IMPLS, "bypass"):
            prog = run_program(ApiaryPSO, PSO_FLAGS, impl=impl)
            logs[impl] = [
                (r.iteration, r.evals, r.best) for r in prog.convergence
            ]
        assert logs["serial"] == logs["mockparallel"] == logs["bypass"]

    def test_different_seeds_differ(self):
        a = run_program(
            ApiaryPSO, ["--mrs-seed", "1"] + PSO_FLAGS[2:], impl="serial"
        )
        b = run_program(
            ApiaryPSO, ["--mrs-seed", "2"] + PSO_FLAGS[2:], impl="serial"
        )
        assert a.best_value != b.best_value


KM_FLAGS = [
    "--km-points", "200", "--km-clusters", "3", "--km-splits", "4",
    "--mrs-seed", "13",
]


class TestKMeansEquivalence:
    def test_serial_equals_mockparallel_exactly(self):
        ser = run_program(KMeans, KM_FLAGS, impl="serial")
        mock = run_program(KMeans, KM_FLAGS, impl="mockparallel")
        assert np.array_equal(ser.centroids, mock.centroids)
        assert ser.shift_history == mock.shift_history

    def test_bypass_agrees_numerically(self):
        ser = run_program(KMeans, KM_FLAGS, impl="serial")
        byp = run_program(KMeans, KM_FLAGS, impl="bypass")
        assert ser.iterations_run == byp.iterations_run
        assert np.allclose(ser.centroids, byp.centroids, atol=1e-8)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    st.lists(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Lu", "Nd"),
                whitelist_characters=" ",
            ),
            max_size=60,
        ),
        max_size=15,
    )
)
def test_wordcount_equals_counter_property(tmp_path_factory, lines):
    """MapReduce WordCount ≡ collections.Counter on arbitrary text."""
    tmp = tmp_path_factory.mktemp("wc")
    path = tmp / "input.txt"
    path.write_text("\n".join(lines) + "\n")
    expected = collections.Counter(
        word for line in lines for word in line.split()
    )
    prog = run_program(
        WordCount, [str(path), str(tmp / "out")], impl="serial"
    )
    assert output_counts(prog) == dict(expected)
