"""Model-based property testing of the scheduler.

Hypothesis drives random interleavings of slave arrivals/failures,
task assignment, completions, and stale reports; after every step the
scheduler must satisfy its structural invariants, and eventually every
dataset must complete as long as at least one slave survives.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.runtime.scheduler import (
    ROUTING_IDENTITY,
    ScheduledDataset,
    Scheduler,
    TaskState,
)


class SchedulerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.scheduler = Scheduler()
        self.scheduler.mark_input_complete("input")
        self.next_slave = 0
        self.next_dataset = 0
        self.live_slaves = set()
        self.assigned = {}  # task -> slave
        self.done = set()
        self.all_tasks = set()

    # -- rules -------------------------------------------------------------

    @rule()
    def add_slave(self):
        slave = self.next_slave
        self.next_slave += 1
        self.scheduler.add_slave(slave)
        self.live_slaves.add(slave)

    @rule(ntasks=st.integers(min_value=1, max_value=4))
    def add_dataset(self, ntasks):
        ds_id = f"d{self.next_dataset}"
        self.next_dataset += 1
        self.scheduler.add_dataset(
            ScheduledDataset(
                ds_id, ntasks=ntasks, affinity_group="g", input_id="input"
            )
        )
        self.all_tasks.update((ds_id, i) for i in range(ntasks))

    @rule(data=st.data())
    def assign(self, data):
        if not self.live_slaves:
            return
        slave = data.draw(st.sampled_from(sorted(self.live_slaves)))
        task = self.scheduler.next_task(slave)
        if task is not None:
            assert task not in self.assigned, "task double-assigned"
            assert task not in self.done, "completed task re-assigned"
            self.assigned[task] = slave

    @rule(data=st.data())
    def complete(self, data):
        if not self.assigned:
            return
        task = data.draw(st.sampled_from(sorted(self.assigned)))
        slave = self.assigned.pop(task)
        accepted, _ = self.scheduler.task_done(slave, task)
        if slave in self.live_slaves:
            assert accepted, "live slave's completion rejected"
            self.done.add(task)
        else:
            assert not accepted, "dead slave's completion accepted"

    @rule(data=st.data())
    def fail_task(self, data):
        if not self.assigned:
            return
        task = data.draw(st.sampled_from(sorted(self.assigned)))
        slave = self.assigned.pop(task)
        self.scheduler.task_failed(slave, task)

    @rule(data=st.data())
    def stale_done_from_wrong_slave(self, data):
        """Completion reports from the wrong slave are rejected."""
        if not self.assigned or not self.live_slaves:
            return
        task = data.draw(st.sampled_from(sorted(self.assigned)))
        owner = self.assigned[task]
        impostors = self.live_slaves - {owner}
        if not impostors:
            return
        impostor = data.draw(st.sampled_from(sorted(impostors)))
        accepted, _ = self.scheduler.task_done(impostor, task)
        assert not accepted

    @rule(data=st.data())
    def lose_slave(self, data):
        if len(self.live_slaves) <= 1:
            return  # keep at least one slave so progress stays possible
        slave = data.draw(st.sampled_from(sorted(self.live_slaves)))
        self.live_slaves.discard(slave)
        reassigned = self.scheduler.remove_slave(slave)
        for task in reassigned:
            self.assigned.pop(task, None)

    @rule()
    def drain(self):
        """Run everything to completion on the surviving slaves."""
        if not self.live_slaves:
            return
        slaves = sorted(self.live_slaves)
        for _ in range(10_000):
            progress = False
            for slave in slaves:
                task = self.scheduler.next_task(slave)
                if task is not None:
                    accepted, _ = self.scheduler.task_done(slave, task)
                    assert accepted
                    self.done.add(task)
                    self.assigned.pop(task, None)
                    progress = True
            if not progress:
                break
        # After a full drain, every task is either done or still held
        # by a live slave the model never completed (in-flight).  No
        # task may be lost.
        assert self.all_tasks - self.done == set(self.assigned)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def outstanding_never_negative(self):
        if hasattr(self, "scheduler"):
            assert self.scheduler.outstanding() >= 0

    @invariant()
    def no_task_both_done_and_assigned(self):
        if hasattr(self, "done"):
            assert not (self.done & set(self.assigned))


SchedulerMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestSchedulerModel = SchedulerMachine.TestCase


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_full_drain_completes_everything(n_slaves, n_tasks):
    """With live slaves and no failures, every task gets exactly one
    completion and the dataset finishes."""
    scheduler = Scheduler()
    for slave in range(n_slaves):
        scheduler.add_slave(slave)
    scheduler.mark_input_complete("input")
    scheduler.add_dataset(
        ScheduledDataset("d", ntasks=n_tasks, affinity_group="g",
                         input_id="input")
    )
    completions = 0
    while scheduler.outstanding():
        for slave in range(n_slaves):
            task = scheduler.next_task(slave)
            if task is not None:
                accepted, _ = scheduler.task_done(slave, task)
                assert accepted
                completions += 1
    assert completions == n_tasks
    assert scheduler.progress("d") == 1.0
    assert scheduler.is_complete("d")


# -- bucket-granular pipelining properties ---------------------------------


def _identity_chain(n):
    """One identity-routing producer with all tasks held in flight,
    plus its pipelined consumer."""
    scheduler = Scheduler()
    scheduler.add_slave(0)
    scheduler.mark_input_complete("input")
    scheduler.add_dataset(
        ScheduledDataset(
            "red",
            ntasks=n,
            affinity_group="red",
            input_id="input",
            routing=ROUTING_IDENTITY,
        )
    )
    scheduler.add_dataset(
        ScheduledDataset("map", ntasks=n, affinity_group="map", input_id="red")
    )
    for i in range(n):
        assert scheduler.next_task(0) == ("red", i)
    return scheduler


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_random_commit_orders_unblock_exactly_committed_tasks(data):
    """Whatever order producer sources commit in, the eligible consumer
    tasks are exactly those whose own source bucket is committed."""
    n = data.draw(st.integers(min_value=2, max_value=5), label="ntasks")
    scheduler = _identity_chain(n)
    order = data.draw(st.permutations(range(n)), label="commit order")
    committed = set()
    for idx in order:
        scheduler.task_done(0, ("red", idx))
        committed.add(idx)
        eligible = {
            i for i in range(n) if scheduler._task_eligible(("map", i))
        }
        assert eligible == committed
        unblocked = [entry["task"] for entry in scheduler.take_unblocked()]
        if len(committed) < n:
            assert unblocked == [("map", idx)]
        else:
            # The final commit completes the dataset: that is a normal
            # activation, not a pipelined unblock.
            assert unblocked == []
    assert scheduler.is_complete("red")


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_revocation_reblocks_exactly_revoked_consumers(data):
    """Lineage recovery for a random subset of producer sources must
    re-block exactly those sources' consumer tasks and no others."""
    n = data.draw(st.integers(min_value=2, max_value=5), label="ntasks")
    scheduler = _identity_chain(n)
    for i in range(n):
        scheduler.task_done(0, ("red", i))
    revoked = data.draw(
        st.sets(st.sampled_from(range(n)), min_size=1), label="revoked"
    )
    scheduler.unmark_complete("red")
    assert scheduler.reset_tasks("red", sorted(revoked)) == len(revoked)
    eligible = {i for i in range(n) if scheduler._task_eligible(("map", i))}
    assert eligible == set(range(n)) - revoked
    # Re-running the revoked producers restores full eligibility; the
    # requeued producer tasks outrank consumer work (FIFO order).
    for idx in sorted(revoked):
        assert scheduler.next_task(0) == ("red", idx)
        scheduler.task_done(0, ("red", idx))
    assert scheduler.is_complete("red")
    assert all(scheduler._task_eligible(("map", i)) for i in range(n))


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_random_dag_dispatches_match_reference_model(data):
    """Differential check against an independent bookkeeping model:
    over a random DAG (dense and identity edges, including zero-task
    datasets) with a random execution order, a pending task is
    dispatchable iff the model says its inputs are available — and the
    whole DAG always drains to completion."""
    scheduler = Scheduler()
    scheduler.add_slave(0)
    scheduler.mark_input_complete("input")
    complete_ids = {"input"}
    shapes = {}  # ds_id -> (input_id, ntasks, routing)
    model_done = {}
    n_datasets = data.draw(st.integers(min_value=1, max_value=5), label="n")
    for k in range(n_datasets):
        ds_id = f"d{k}"
        input_id = data.draw(
            st.sampled_from(["input"] + [f"d{j}" for j in range(k)]),
            label=f"input of {ds_id}",
        )
        if input_id in shapes and shapes[input_id][2] == ROUTING_IDENTITY:
            # Identity consumers are square with their producer.
            ntasks = shapes[input_id][1]
        else:
            ntasks = data.draw(
                st.integers(min_value=0, max_value=3), label=f"ntasks {ds_id}"
            )
        routing = (
            data.draw(
                st.sampled_from([None, ROUTING_IDENTITY]),
                label=f"routing {ds_id}",
            )
            if ntasks
            else None
        )
        scheduler.add_dataset(
            ScheduledDataset(
                ds_id,
                ntasks=ntasks,
                affinity_group=ds_id,
                input_id=input_id,
                routing=routing,
            )
        )
        shapes[ds_id] = (input_id, ntasks, routing)
        model_done[ds_id] = set()
        complete_ids.update(scheduler.take_completed_datasets())

    def model_eligible(ds_id, idx):
        input_id = shapes[ds_id][0]
        if input_id in complete_ids:
            return True
        if input_id not in shapes:
            return False
        return (
            shapes[input_id][2] == ROUTING_IDENTITY
            and idx in model_done[input_id]
        )

    def check_pending_against_model():
        for ds_id, (_, ntasks, _) in shapes.items():
            sched = scheduler._datasets[ds_id]
            for idx in range(ntasks):
                if sched.task_state.get(idx) == TaskState.PENDING:
                    assert scheduler._task_eligible(
                        (ds_id, idx)
                    ) == model_eligible(ds_id, idx)

    def run_one():
        task = scheduler.next_task(0)
        if task is None:
            return False
        assert model_eligible(*task), f"{task} dispatched too early"
        accepted, ds_complete = scheduler.task_done(0, task)
        assert accepted
        model_done[task[0]].add(task[1])
        if ds_complete:
            complete_ids.add(task[0])
        complete_ids.update(scheduler.take_completed_datasets())
        scheduler.take_unblocked()
        return True

    for _ in range(data.draw(st.integers(0, 30), label="steps")):
        check_pending_against_model()
        if not run_one():
            break
    # Drain to completion: nothing may be lost or stuck.
    for _ in range(10_000):
        if not run_one():
            break
    check_pending_against_model()
    for ds_id in shapes:
        assert scheduler.is_complete(ds_id), f"{ds_id} never completed"
