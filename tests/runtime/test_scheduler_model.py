"""Model-based property testing of the scheduler.

Hypothesis drives random interleavings of slave arrivals/failures,
task assignment, completions, and stale reports; after every step the
scheduler must satisfy its structural invariants, and eventually every
dataset must complete as long as at least one slave survives.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.runtime.scheduler import ScheduledDataset, Scheduler, TaskState


class SchedulerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.scheduler = Scheduler()
        self.scheduler.mark_input_complete("input")
        self.next_slave = 0
        self.next_dataset = 0
        self.live_slaves = set()
        self.assigned = {}  # task -> slave
        self.done = set()
        self.all_tasks = set()

    # -- rules -------------------------------------------------------------

    @rule()
    def add_slave(self):
        slave = self.next_slave
        self.next_slave += 1
        self.scheduler.add_slave(slave)
        self.live_slaves.add(slave)

    @rule(ntasks=st.integers(min_value=1, max_value=4))
    def add_dataset(self, ntasks):
        ds_id = f"d{self.next_dataset}"
        self.next_dataset += 1
        self.scheduler.add_dataset(
            ScheduledDataset(
                ds_id, ntasks=ntasks, affinity_group="g", input_id="input"
            )
        )
        self.all_tasks.update((ds_id, i) for i in range(ntasks))

    @rule(data=st.data())
    def assign(self, data):
        if not self.live_slaves:
            return
        slave = data.draw(st.sampled_from(sorted(self.live_slaves)))
        task = self.scheduler.next_task(slave)
        if task is not None:
            assert task not in self.assigned, "task double-assigned"
            assert task not in self.done, "completed task re-assigned"
            self.assigned[task] = slave

    @rule(data=st.data())
    def complete(self, data):
        if not self.assigned:
            return
        task = data.draw(st.sampled_from(sorted(self.assigned)))
        slave = self.assigned.pop(task)
        accepted, _ = self.scheduler.task_done(slave, task)
        if slave in self.live_slaves:
            assert accepted, "live slave's completion rejected"
            self.done.add(task)
        else:
            assert not accepted, "dead slave's completion accepted"

    @rule(data=st.data())
    def fail_task(self, data):
        if not self.assigned:
            return
        task = data.draw(st.sampled_from(sorted(self.assigned)))
        slave = self.assigned.pop(task)
        self.scheduler.task_failed(slave, task)

    @rule(data=st.data())
    def stale_done_from_wrong_slave(self, data):
        """Completion reports from the wrong slave are rejected."""
        if not self.assigned or not self.live_slaves:
            return
        task = data.draw(st.sampled_from(sorted(self.assigned)))
        owner = self.assigned[task]
        impostors = self.live_slaves - {owner}
        if not impostors:
            return
        impostor = data.draw(st.sampled_from(sorted(impostors)))
        accepted, _ = self.scheduler.task_done(impostor, task)
        assert not accepted

    @rule(data=st.data())
    def lose_slave(self, data):
        if len(self.live_slaves) <= 1:
            return  # keep at least one slave so progress stays possible
        slave = data.draw(st.sampled_from(sorted(self.live_slaves)))
        self.live_slaves.discard(slave)
        reassigned = self.scheduler.remove_slave(slave)
        for task in reassigned:
            self.assigned.pop(task, None)

    @rule()
    def drain(self):
        """Run everything to completion on the surviving slaves."""
        if not self.live_slaves:
            return
        slaves = sorted(self.live_slaves)
        for _ in range(10_000):
            progress = False
            for slave in slaves:
                task = self.scheduler.next_task(slave)
                if task is not None:
                    accepted, _ = self.scheduler.task_done(slave, task)
                    assert accepted
                    self.done.add(task)
                    self.assigned.pop(task, None)
                    progress = True
            if not progress:
                break
        # After a full drain, every task is either done or still held
        # by a live slave the model never completed (in-flight).  No
        # task may be lost.
        assert self.all_tasks - self.done == set(self.assigned)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def outstanding_never_negative(self):
        if hasattr(self, "scheduler"):
            assert self.scheduler.outstanding() >= 0

    @invariant()
    def no_task_both_done_and_assigned(self):
        if hasattr(self, "done"):
            assert not (self.done & set(self.assigned))


SchedulerMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestSchedulerModel = SchedulerMachine.TestCase


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_full_drain_completes_everything(n_slaves, n_tasks):
    """With live slaves and no failures, every task gets exactly one
    completion and the dataset finishes."""
    scheduler = Scheduler()
    for slave in range(n_slaves):
        scheduler.add_slave(slave)
    scheduler.mark_input_complete("input")
    scheduler.add_dataset(
        ScheduledDataset("d", ntasks=n_tasks, affinity_group="g",
                         input_id="input")
    )
    completions = 0
    while scheduler.outstanding():
        for slave in range(n_slaves):
            task = scheduler.next_task(slave)
            if task is not None:
                accepted, _ = scheduler.task_done(slave, task)
                assert accepted
                completions += 1
    assert completions == n_tasks
    assert scheduler.progress("d") == 1.0
    assert scheduler.is_complete("d")
