"""Resolution of the slave sign-in wait budget.

Priority: ``--mrs-slave-wait-timeout`` option, then the
``MRS_SLAVE_WAIT_TIMEOUT`` environment variable, then the 30 s default
that used to be hard-coded in ``wait_for_slaves``.
"""

from repro.core import options as options_mod
from repro.runtime.master import (
    DEFAULT_SLAVE_WAIT_TIMEOUT,
    resolve_slave_wait_timeout,
)


class Opts:
    def __init__(self, value=None):
        self.slave_wait_timeout = value


class TestResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("MRS_SLAVE_WAIT_TIMEOUT", raising=False)
        assert resolve_slave_wait_timeout(Opts()) == DEFAULT_SLAVE_WAIT_TIMEOUT
        assert resolve_slave_wait_timeout(None) == DEFAULT_SLAVE_WAIT_TIMEOUT

    def test_option_wins(self, monkeypatch):
        monkeypatch.setenv("MRS_SLAVE_WAIT_TIMEOUT", "99")
        assert resolve_slave_wait_timeout(Opts(5.0)) == 5.0

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("MRS_SLAVE_WAIT_TIMEOUT", "12.5")
        assert resolve_slave_wait_timeout(Opts()) == 12.5

    def test_malformed_environment_ignored(self, monkeypatch):
        monkeypatch.setenv("MRS_SLAVE_WAIT_TIMEOUT", "soon")
        assert resolve_slave_wait_timeout(Opts()) == DEFAULT_SLAVE_WAIT_TIMEOUT

    def test_flag_parses(self):
        opts, _ = options_mod.parse_options(
            None, ["--mrs", "master", "--mrs-slave-wait-timeout", "7"]
        )
        assert opts.slave_wait_timeout == 7.0
        assert resolve_slave_wait_timeout(opts) == 7.0


class TestWaitForSlaves:
    def test_short_timeout_returns_promptly(self, monkeypatch, tmp_path):
        from repro.runtime.master import MasterBackend

        opts, _ = options_mod.parse_options(
            None,
            [
                "--mrs",
                "master",
                "--mrs-tmpdir",
                str(tmp_path),
                "--mrs-slave-wait-timeout",
                "0.05",
            ],
        )
        backend = MasterBackend(None, opts)
        try:
            # timeout=None resolves the option: no 30 s hang here.
            assert backend.wait_for_slaves(1) == 0
        finally:
            backend.close()
