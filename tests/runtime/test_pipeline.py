"""Iteration pipelining at the runtime level.

Covers the acceptance bar for bucket-granular scheduling: zero-task
datasets complete (and unblock dependents) under every runtime, the
pipelined scheduler actually dispatches across the iteration barrier
on the multiprocess pool, and outputs stay byte-identical to the
barrier scheduler and across implementations.
"""

import json

import pytest

from repro.apps.pso.mrpso import ApiaryPSO
from repro.core import dataset as ds
from repro.core.job import Job
from repro.core.main import run_program
from repro.core.options import default_options
from repro.runtime.mockparallel import MockParallelBackend
from repro.runtime.multiprocess import MultiprocessBackend
from repro.runtime.serial import SerialBackend

from tests.runtime.programs_mp import Tally

# Unfused PSO keeps a stable partitioner and split count across the
# reduce of every iteration — the identity-routing shape the pipelined
# scheduler overlaps across iterations.
PSO_FLAGS = [
    "--mrs-seed", "11", "--pso-function", "sphere", "--pso-dims", "6",
    "--pso-subswarms", "4", "--pso-particles", "3", "--pso-inner", "2",
    "--pso-outer", "5", "--pso-no-fuse", "--pso-qmax", "3",
]


def pso_log(prog):
    return [(r.iteration, r.evals, r.best) for r in prog.convergence]


def make_job(impl, tmp_path, opts_overrides=None):
    overrides = dict(opts_overrides or {})
    opts = default_options(**overrides)
    program = Tally(opts, [])
    if impl == "serial":
        backend = SerialBackend(program)
    elif impl == "mockparallel":
        backend = MockParallelBackend(program)
    else:
        overrides.setdefault("procs", 2)
        overrides.setdefault("tmpdir", str(tmp_path / "mp"))
        opts = default_options(**overrides)
        program = Tally(opts, [])
        backend = MultiprocessBackend(program, opts, [])
    return Job(backend, program), program, backend


class TestZeroTaskDatasets:
    """The verified repro: an empty input split set makes ``ntasks=0``
    datasets, whose dependents used to stall forever on the scheduler
    runtimes (completion only propagated via ``task_done``)."""

    @pytest.mark.parametrize("impl", ("serial", "mockparallel", "multiprocess"))
    def test_dependent_of_empty_dataset_completes(self, impl, tmp_path):
        job, program, backend = make_job(impl, tmp_path)
        try:
            empty_src = job._register(ds.LocalData([], splits=0))
            mapped = job.map_data(empty_src, program.map, splits=3)
            assert mapped.ntasks == 0
            reduced = job.reduce_data(mapped, program.reduce, splits=2)
            done = job.wait(reduced, timeout=30)
            assert reduced in done
            assert reduced.error is None
            assert reduced.complete, "dependent of empty dataset stalled"
            assert reduced.data() == []
        finally:
            backend.close()

    @pytest.mark.parametrize("impl", ("serial", "mockparallel", "multiprocess"))
    def test_empty_dataset_itself_waitable(self, impl, tmp_path):
        job, program, backend = make_job(impl, tmp_path)
        try:
            empty_src = job._register(ds.LocalData([], splits=0))
            mapped = job.map_data(empty_src, program.map, splits=2)
            job.wait(mapped, timeout=30)
            assert mapped.complete
            assert mapped.data() == []
        finally:
            backend.close()


class TestPipelinedEquivalence:
    def test_unfused_pso_identical_across_impls_and_modes(self, tmp_path):
        """Pipelined and barrier scheduling must be observationally
        identical — same convergence log, bit for bit — and agree with
        the non-scheduled implementations."""
        logs = {}
        for impl in ("serial", "mockparallel"):
            logs[impl] = pso_log(run_program(ApiaryPSO, PSO_FLAGS, impl=impl))
        for mode in ("off", "buckets"):
            prog = run_program(
                ApiaryPSO,
                PSO_FLAGS,
                impl="multiprocess",
                procs=4,
                pipeline=mode,
                tmpdir=str(tmp_path / f"mp_{mode}"),
            )
            logs[f"multiprocess/{mode}"] = pso_log(prog)
        reference = logs.pop("serial")
        assert reference, "PSO produced no convergence log"
        for impl, log in logs.items():
            assert log == reference, f"{impl} diverged from serial"

    def test_pipelined_dispatches_surface_in_metrics(self, tmp_path):
        """The pool actually crosses the iteration barrier: some tasks
        dispatch before their input dataset completes, and the count
        lands in job metrics."""
        path = tmp_path / "metrics.json"
        run_program(
            ApiaryPSO,
            PSO_FLAGS,
            impl="multiprocess",
            procs=4,
            pipeline="buckets",
            tmpdir=str(tmp_path / "mp"),
            metrics_json=str(path),
        )
        counters = json.loads(path.read_text())["metrics"]["counters"]
        assert counters.get("scheduler.pipelined_dispatches", 0) > 0

    def test_pipeline_off_never_crosses_barrier(self, tmp_path):
        path = tmp_path / "metrics.json"
        run_program(
            ApiaryPSO,
            PSO_FLAGS,
            impl="multiprocess",
            procs=4,
            pipeline="off",
            tmpdir=str(tmp_path / "mp"),
            metrics_json=str(path),
        )
        counters = json.loads(path.read_text())["metrics"]["counters"]
        assert counters.get("scheduler.pipelined_dispatches", 0) == 0
