"""Stable hashing: determinism, type separation, distribution."""

import enum
import os
import subprocess
import sys

import pytest
from hypothesis import given, strategies as st

import repro
from repro.util.hashing import key_to_bytes, stable_hash, stable_hash_bytes


class TestStableHashBytes:
    def test_deterministic(self):
        assert stable_hash_bytes(b"abc") == stable_hash_bytes(b"abc")

    def test_distinct_inputs_differ(self):
        assert stable_hash_bytes(b"abc") != stable_hash_bytes(b"abd")

    def test_64_bit_range(self):
        h = stable_hash_bytes(b"anything")
        assert 0 <= h < 2**64

    def test_empty_input(self):
        assert isinstance(stable_hash_bytes(b""), int)


class TestKeyToBytes:
    def test_str_and_bytes_distinct(self):
        assert key_to_bytes("abc") != key_to_bytes(b"abc")

    def test_int_and_str_distinct(self):
        assert key_to_bytes(1) != key_to_bytes("1")

    def test_bool_and_int_distinct(self):
        assert key_to_bytes(True) != key_to_bytes(1)
        assert key_to_bytes(False) != key_to_bytes(0)

    def test_tuple_keys_supported(self):
        assert key_to_bytes((1, "a")) == key_to_bytes((1, "a"))
        assert key_to_bytes((1, "a")) != key_to_bytes((1, "b"))

    def test_negative_int(self):
        assert key_to_bytes(-5) != key_to_bytes(5)

    def test_unicode(self):
        assert key_to_bytes("héllo") == key_to_bytes("héllo")

    def test_int_subclass_distinct_from_plain_int(self):
        """Regression: an IntEnum key must not collide with its integer
        value (processes can disagree about which type a key has)."""

        class Shard(enum.IntEnum):
            FIRST = 1
            SECOND = 2

        assert key_to_bytes(Shard.FIRST) != key_to_bytes(1)
        assert key_to_bytes(Shard.SECOND) != key_to_bytes(2)
        # Still deterministic for the subclass itself.
        assert key_to_bytes(Shard.FIRST) == key_to_bytes(Shard.FIRST)
        assert stable_hash(Shard.FIRST) != stable_hash(Shard.SECOND)

    def test_distinct_int_subclasses_distinct(self):
        class A(int):
            pass

        class B(int):
            pass

        assert key_to_bytes(A(7)) != key_to_bytes(B(7))
        assert key_to_bytes(A(7)) != key_to_bytes(7)

    def test_bool_unaffected_by_int_subclass_tagging(self):
        # bool is itself an int subclass but keeps its dedicated tag.
        assert key_to_bytes(True) == b"B:1"
        assert key_to_bytes(False) == b"B:0"


class TestStableHashCrossProcess:
    def test_stable_across_interpreter_runs(self):
        """The whole point: placement decisions must agree between
        master and slave processes with different hash seeds."""
        code = (
            "from repro.util.hashing import stable_hash;"
            "print(stable_hash('gutenberg'), stable_hash(42))"
        )
        # A minimal, fully controlled child environment: the package
        # location must be propagated (a bare PATH has no import path
        # for ``repro``), while PYTHONHASHSEED forces a fresh, distinct
        # builtin-hash seed per child so seed-independence is proven,
        # not inherited.
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        base_env = {
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONPATH": package_root,
        }
        outputs = set()
        for hash_seed in ("random", "1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={**base_env, "PYTHONHASHSEED": hash_seed},
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
        expected = f"{stable_hash('gutenberg')} {stable_hash(42)}"
        assert outputs.pop() == expected


@given(st.one_of(st.text(), st.integers(), st.binary(),
                 st.tuples(st.integers(), st.text())))
def test_hash_is_deterministic_property(key):
    assert stable_hash(key) == stable_hash(key)


@given(st.integers(min_value=-(2**70), max_value=2**70))
def test_big_ints_hashable(value):
    assert 0 <= stable_hash(value) < 2**64


@given(st.lists(st.text(min_size=1), min_size=50, max_size=50, unique=True))
def test_distribution_not_degenerate(keys):
    """50 distinct keys should not all collide into one hash."""
    hashes = {stable_hash(k) for k in keys}
    assert len(hashes) > 40
