"""Stopwatch and PhaseTimer behaviour."""

import time

import pytest

from repro.util.timing import PhaseTimer, Stopwatch


class TestStopwatch:
    def test_initially_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        first = sw.stop()
        assert first >= 0.01
        sw.start()
        time.sleep(0.01)
        assert sw.stop() >= first + 0.01

    def test_stop_without_start_is_noop(self):
        sw = Stopwatch()
        assert sw.stop() == 0.0

    def test_double_start_is_idempotent(self):
        sw = Stopwatch()
        sw.start()
        sw.start()
        time.sleep(0.005)
        assert sw.stop() < 0.1  # not double-counted

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        sw.reset()
        assert sw.elapsed == 0.0

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.005

    def test_elapsed_while_running(self):
        sw = Stopwatch().start()
        time.sleep(0.005)
        assert sw.elapsed >= 0.005
        assert sw.running


class TestPhaseTimer:
    def test_begin_end_attribution(self):
        timer = PhaseTimer()
        timer.begin("map")
        time.sleep(0.01)
        timer.end()
        assert timer.get("map") >= 0.01
        assert timer.get("reduce") == 0.0

    def test_begin_closes_previous_phase(self):
        timer = PhaseTimer()
        timer.begin("a")
        time.sleep(0.005)
        timer.begin("b")
        time.sleep(0.005)
        timer.end()
        assert timer.get("a") >= 0.005
        assert timer.get("b") >= 0.005

    def test_add_modeled_time(self):
        timer = PhaseTimer()
        timer.add("modeled", 12.5)
        timer.add("modeled", 2.5)
        assert timer.get("modeled") == 15.0

    def test_total(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.add("y", 2.0)
        assert timer.total == 3.0

    def test_breakdown_preserves_first_seen_order(self):
        timer = PhaseTimer()
        timer.add("z", 1.0)
        timer.add("a", 1.0)
        timer.add("z", 1.0)
        assert [name for name, _ in timer.breakdown()] == ["z", "a"]

    def test_end_without_begin_is_noop(self):
        timer = PhaseTimer()
        timer.end()
        assert timer.total == 0.0

    def test_repr_mentions_phases(self):
        timer = PhaseTimer()
        timer.add("shuffle", 1.0)
        assert "shuffle" in repr(timer)


class TestPhaseTimerSafety:
    """The runtime instrumentation exercises unbalanced and re-entrant
    begin/end sequences; none of them may lose or corrupt time."""

    def test_double_end_is_noop(self):
        timer = PhaseTimer()
        timer.begin("map")
        timer.end()
        recorded = timer.get("map")
        timer.end()
        timer.end()
        assert timer.get("map") == recorded
        assert timer.total == recorded

    def test_end_before_any_begin_is_noop(self):
        timer = PhaseTimer()
        timer.end()
        timer.begin("map")
        time.sleep(0.005)
        timer.end()
        assert timer.get("map") >= 0.005

    def test_reentrant_begin_same_phase_accumulates(self):
        timer = PhaseTimer()
        timer.begin("map")
        time.sleep(0.005)
        timer.begin("map")  # re-entrant: closes and reopens "map"
        time.sleep(0.005)
        timer.end()
        assert timer.get("map") >= 0.01
        assert timer.current is None
        assert [name for name, _ in timer.breakdown()] == ["map"]

    def test_current_property(self):
        timer = PhaseTimer()
        assert timer.current is None
        timer.begin("reduce")
        assert timer.current == "reduce"
        timer.end()
        assert timer.current is None

    def test_measure_attributes_block_time(self):
        timer = PhaseTimer()
        with timer.measure("map"):
            time.sleep(0.005)
        assert timer.get("map") >= 0.005
        assert timer.current is None

    def test_measure_restores_enclosing_phase(self):
        timer = PhaseTimer()
        timer.begin("outer")
        time.sleep(0.003)
        with timer.measure("inner"):
            time.sleep(0.003)
        # The outer phase is open again and keeps accumulating.
        assert timer.current == "outer"
        time.sleep(0.003)
        timer.end()
        assert timer.get("outer") >= 0.006
        assert timer.get("inner") >= 0.003

    def test_measure_reentrant_same_phase(self):
        timer = PhaseTimer()
        with timer.measure("map"):
            time.sleep(0.003)
            with timer.measure("map"):
                time.sleep(0.003)
            time.sleep(0.003)
        assert timer.get("map") >= 0.009
        assert timer.current is None

    def test_measure_restores_phase_on_exception(self):
        timer = PhaseTimer()
        timer.begin("outer")
        with pytest.raises(RuntimeError):
            with timer.measure("inner"):
                raise RuntimeError("boom")
        assert timer.current == "outer"
        timer.end()
        assert timer.get("inner") >= 0.0
