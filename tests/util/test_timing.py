"""Stopwatch and PhaseTimer behaviour."""

import time

from repro.util.timing import PhaseTimer, Stopwatch


class TestStopwatch:
    def test_initially_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        first = sw.stop()
        assert first >= 0.01
        sw.start()
        time.sleep(0.01)
        assert sw.stop() >= first + 0.01

    def test_stop_without_start_is_noop(self):
        sw = Stopwatch()
        assert sw.stop() == 0.0

    def test_double_start_is_idempotent(self):
        sw = Stopwatch()
        sw.start()
        sw.start()
        time.sleep(0.005)
        assert sw.stop() < 0.1  # not double-counted

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        sw.reset()
        assert sw.elapsed == 0.0

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.005

    def test_elapsed_while_running(self):
        sw = Stopwatch().start()
        time.sleep(0.005)
        assert sw.elapsed >= 0.005
        assert sw.running


class TestPhaseTimer:
    def test_begin_end_attribution(self):
        timer = PhaseTimer()
        timer.begin("map")
        time.sleep(0.01)
        timer.end()
        assert timer.get("map") >= 0.01
        assert timer.get("reduce") == 0.0

    def test_begin_closes_previous_phase(self):
        timer = PhaseTimer()
        timer.begin("a")
        time.sleep(0.005)
        timer.begin("b")
        time.sleep(0.005)
        timer.end()
        assert timer.get("a") >= 0.005
        assert timer.get("b") >= 0.005

    def test_add_modeled_time(self):
        timer = PhaseTimer()
        timer.add("modeled", 12.5)
        timer.add("modeled", 2.5)
        assert timer.get("modeled") == 15.0

    def test_total(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.add("y", 2.0)
        assert timer.total == 3.0

    def test_breakdown_preserves_first_seen_order(self):
        timer = PhaseTimer()
        timer.add("z", 1.0)
        timer.add("a", 1.0)
        timer.add("z", 1.0)
        assert [name for name, _ in timer.breakdown()] == ["z", "a"]

    def test_end_without_begin_is_noop(self):
        timer = PhaseTimer()
        timer.end()
        assert timer.total == 0.0

    def test_repr_mentions_phases(self):
        timer = PhaseTimer()
        timer.add("shuffle", 1.0)
        assert "shuffle" in repr(timer)
