"""E2 — Startup scripts: Mrs 4-step launch vs Hadoop 6-phase launch
(Programs 3 vs 4, section V-A) plus the real measured Mrs startup.

The paper's claims: starting a Mrs job is "quite easy" (4 script
steps, master + slaves, ~2 s), while Hadoop "has more issues to
address" — per-job HDFS format, daemon start/stop, data copy-in/out.
We report (a) the modeled step tables for both and (b) the *measured*
time for a real Mrs master + 2 slave subprocesses to become ready on
this machine.
"""

from repro.apps.wordcount import WordCountCombined
from repro.hadoopsim.jobclient import (
    compare_startup_scripts,
    hadoop_shared_cluster_teardown,
)
from repro.runtime.cluster import LocalCluster
from reporting import fmt_seconds, metrics_startup_seconds, once, print_table


def measured_mrs_startup(tmp_path_factory=None) -> float:
    """Wall time from master construction to N signed-in slaves
    (Program 3), as measured by the runtime's own metrics layer — the
    same ``startup.seconds`` a production run reports through
    ``--mrs-metrics-json``."""
    import tempfile, os

    workdir = tempfile.mkdtemp(prefix="bench_startup_")
    input_file = os.path.join(workdir, "in.txt")
    with open(input_file, "w") as f:
        f.write("tiny input\n")
    cluster = LocalCluster(
        WordCountCombined, [input_file, os.path.join(workdir, "out")],
        n_slaves=2,
    )
    cluster.start()
    elapsed = metrics_startup_seconds(cluster.backend)
    cluster.stop()
    assert elapsed > 0.0, "metrics layer must have recorded startup"
    return elapsed


def test_startup_script_comparison(benchmark):
    measured = once(benchmark, measured_mrs_startup)
    reports = compare_startup_scripts(n_input_files=312, avg_file_bytes=80_000)
    teardown = hadoop_shared_cluster_teardown(output_bytes=5e6)

    rows = []
    for step in reports["mrs"].steps:
        rows.append(["Mrs", step.name, fmt_seconds(step.seconds)])
    rows.append(["Mrs", "TOTAL (modeled)", fmt_seconds(reports["mrs"].total)])
    rows.append(["Mrs", "TOTAL (measured, master + 2 slaves)",
                 fmt_seconds(measured)])
    for step in reports["hadoop"].steps:
        rows.append(["Hadoop", step.name, fmt_seconds(step.seconds)])
    for step in teardown.steps:
        rows.append(["Hadoop", step.name + " (teardown)",
                     fmt_seconds(step.seconds)])
    hadoop_total = reports["hadoop"].total + teardown.total
    rows.append(["Hadoop", "TOTAL (modeled)", fmt_seconds(hadoop_total)])

    print_table(
        "E2: per-job startup on a shared cluster (Programs 3 vs 4)",
        ["system", "step", "time"],
        rows,
        notes=[
            "paper: Mrs startup 'about 2 seconds'; 4 script parts vs 6 "
            "Hadoop phases including per-job HDFS format and daemons",
            f"measured Mrs startup here: {fmt_seconds(measured)}",
        ],
    )
    assert reports["mrs"].step_count == 4
    assert reports["hadoop"].step_count >= 6
    assert measured < 10.0
    assert hadoop_total > 10 * reports["mrs"].total
