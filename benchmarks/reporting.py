"""Paper-style result tables for the benchmark harness.

Every bench prints the rows/series the paper reports, with three
columns of provenance: the paper's number, our measured number at the
scaled workload, and (where meaningful) the extrapolation of our
measurement to paper scale.  EXPERIMENTS.md mirrors these tables.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Iterable, List, Optional, Sequence


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: Optional[List[str]] = None,
) -> None:
    rows = [["" if v is None else str(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join("-" * w for w in widths)
    out = sys.stdout
    out.write(f"\n== {title} ==\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(line + "\n")
    for row in rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    for note in notes or []:
        out.write(f"note: {note}\n")
    out.flush()


def json_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: Optional[List[str]] = None,
) -> dict:
    """The table :func:`print_table` renders, as a JSON-ready dict —
    one record per row, keyed by header, so scripts can consume bench
    results without scraping stdout."""
    records = []
    for row in rows:
        row = list(row)
        records.append(
            {h: (row[i] if i < len(row) else None) for i, h in enumerate(headers)}
        )
    return {
        "version": 1,
        "title": title,
        "headers": list(headers),
        "rows": records,
        "notes": list(notes or []),
    }


def write_json_table(
    path: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: Optional[List[str]] = None,
) -> dict:
    """Atomically write :func:`json_table` output to ``path``."""
    doc = json_table(title, headers, rows, notes)
    parent = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(parent, exist_ok=True)
    staging = path + ".tmp"
    with open(staging, "w") as f:
        json.dump(doc, f, indent=2)
    os.replace(staging, path)
    return doc


def fmt_seconds(seconds: float) -> str:
    if seconds >= 120:
        return f"{seconds / 60:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.0f} ms"


def fmt_count(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.3g}e9"
    if value >= 1e6:
        return f"{value / 1e6:.3g}e6"
    if value >= 1e3:
        return f"{value / 1e3:.3g}e3"
    return f"{value:.3g}"


def metrics_startup_seconds(backend) -> float:
    """A backend's measured startup time, read from the runtime
    metrics layer (the same number ``--mrs-metrics-json`` reports)."""
    from repro.observability import export

    return export.startup_seconds(backend.metrics())


def metrics_phase_rows(report, phases=("map", "shuffle", "reduce")):
    """Table rows for a metrics report's per-phase breakdown."""
    return [
        [phase, fmt_seconds(float((report.get("phases") or {}).get(phase, 0.0)))]
        for phase in phases
    ]


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Cluster-scale jobs are too slow for auto-calibrated rounds; a
    single timed round still registers the bench in the report.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
