"""Extension — parallel scaling of the Mrs parallel runtimes.

Not a paper table (the paper's cluster numbers are per-application),
but the claim "Mrs programs are fast" implies real speedup from real
worker processes.  We run a compute-bound pi job (pure-Python kernel,
so each task is genuinely CPU-heavy) on 1, 2, and 4 local slave
processes, then sweep the multiprocess worker pool over 1/2/4/8
workers, and report speedup vs the in-process serial run.  The pool
sweep also writes a machine-readable JSON speedup table.
"""

import os
import time

from repro.apps.pi.estimator import PiEstimator
from repro.core.main import run_program
from repro.runtime.cluster import run_on_cluster
from reporting import fmt_seconds, once, print_table, write_json_table

SAMPLES = 1_200_000
TASKS = 8
PROC_SWEEP = (1, 2, 4, 8)


def timed_cluster_pi(n_slaves: int, samples: int = SAMPLES):
    flags = ["--pi-samples", str(samples), "--pi-tasks", str(TASKS)]
    started = time.perf_counter()
    program = run_on_cluster(PiEstimator, flags, n_slaves=n_slaves)
    return program, time.perf_counter() - started


def test_slave_scaling(benchmark):
    serial_started = time.perf_counter()
    serial = run_program(
        PiEstimator,
        ["--pi-samples", str(SAMPLES), "--pi-tasks", str(TASKS)],
        impl="serial",
    )
    serial_s = time.perf_counter() - serial_started

    results = {}
    for n_slaves in (1, 2, 4):
        if n_slaves == 2:
            program, seconds = once(benchmark, timed_cluster_pi, n_slaves)
        else:
            program, seconds = timed_cluster_pi(n_slaves)
        assert program.pi_estimate == serial.pi_estimate
        results[n_slaves] = seconds

    rows = [["serial (in-process)", fmt_seconds(serial_s), "1.0x"]]
    for n_slaves, seconds in results.items():
        rows.append([
            f"{n_slaves} slave(s)",
            fmt_seconds(seconds),
            f"{serial_s / seconds:.2f}x",
        ])
    cores = os.cpu_count() or 1
    print_table(
        f"Scaling: pi with {SAMPLES:,} samples, {TASKS} tasks "
        "(compute-bound pure-Python kernel)",
        ["configuration", "wall time", "speedup vs serial"],
        rows,
        notes=[
            "includes cluster spin-up (~0.2-0.5 s) and per-task RPC; "
            f"speedup is bounded by the {cores} core(s) available here",
        ],
    )
    # The shape depends on physical parallelism: with multiple cores,
    # more slaves must help; on a single core they can only add
    # (bounded) process-switching and RPC overhead.
    if cores >= 4:
        assert results[4] < results[1]
    elif cores >= 2:
        assert results[2] < results[1] * 1.25
    else:
        assert results[4] < serial_s * 6.0, "overhead must stay bounded"
    # Identical answers everywhere (asserted per-run above).


def timed_pool_pi(procs: int, samples: int = SAMPLES):
    flags = ["--pi-samples", str(samples), "--pi-tasks", str(TASKS)]
    started = time.perf_counter()
    program = run_program(
        PiEstimator, flags, impl="multiprocess", procs=procs
    )
    return program, time.perf_counter() - started


def test_multiprocess_scaling(benchmark, tmp_path):
    """--mrs-procs sweep: the worker pool's speedup over serial, as a
    printed table and a JSON artifact (speedup.json)."""
    serial_started = time.perf_counter()
    serial = run_program(
        PiEstimator,
        ["--pi-samples", str(SAMPLES), "--pi-tasks", str(TASKS)],
        impl="serial",
    )
    serial_s = time.perf_counter() - serial_started

    results = {}
    for procs in PROC_SWEEP:
        if procs == 2:
            program, seconds = once(benchmark, timed_pool_pi, procs)
        else:
            program, seconds = timed_pool_pi(procs)
        assert program.pi_estimate == serial.pi_estimate
        results[procs] = seconds

    cores = os.cpu_count() or 1
    headers = ["configuration", "wall time", "speedup vs serial"]
    rows = [["serial (in-process)", fmt_seconds(serial_s), "1.00x"]]
    for procs, seconds in results.items():
        rows.append([
            f"{procs} worker(s)",
            fmt_seconds(seconds),
            f"{serial_s / seconds:.2f}x",
        ])
    notes = [
        "includes pool spin-up; speedup is bounded by the "
        f"{cores} core(s) available here",
    ]
    title = (
        f"Scaling: pi with {SAMPLES:,} samples, {TASKS} tasks "
        "on the multiprocess worker pool"
    )
    print_table(title, headers, rows, notes=notes)
    json_path = os.environ.get(
        "MRS_SCALING_JSON", str(tmp_path / "speedup.json")
    )
    write_json_table(json_path, title, headers, rows, notes=notes)
    print(f"json table: {json_path}")

    # Same conditional shape as the slave sweep: with real cores the
    # pool must beat one worker; on a single core it may only add
    # bounded scheduling overhead.
    if cores >= 4:
        assert results[4] < results[1]
    elif cores >= 2:
        assert results[2] < results[1] * 1.25
    else:
        assert results[8] < serial_s * 6.0, "overhead must stay bounded"
