"""E4 — Fig 3a: pi estimation run time vs sample count, pure Python.

Reproduces both panels of the figure's argument:

* left side (small sample counts): Mrs total ≈ its ~2 s startup while
  Hadoop sits at its ~30 s floor — an order of magnitude or more;
* right side (large sample counts): Java's faster inner loop wins over
  pure CPython, with the crossover where per-core compute time reaches
  roughly half a minute ("task times less than around 32 seconds").

Measured: real Mrs serial runs (CPython Halton kernel) at the small
counts, and the measured CPython sampling rate parameterizes the
curve.  Modeled: the Hadoop series (DES with per-task Java seconds =
python seconds / java_speedup) and a PyPy series at the paper-implied
~4x CPython, since PyPy is not installable offline (see DESIGN.md
substitutions).
"""

import time

from repro.apps.pi.estimator import PiEstimator
from repro.apps.pi.halton import measure_python_rate
from repro.core.main import run_program
from repro.hadoopsim import HadoopCluster, HadoopJob
from reporting import fmt_count, fmt_seconds, once, print_table

#: Paper cluster: 21 nodes x 6 cores; the figure used 126-way jobs.
SLOTS = 126
N_TASKS = 126
#: Measured Mrs cluster startup is ~0.3 s locally; the paper's is ~2 s
#: (real network).  Use the paper's for the modeled curve.
MRS_STARTUP = 2.0
MRS_PER_OP_OVERHEAD = 0.3

#: Modeled PyPy speedup over CPython for this numeric loop (paper
#: Fig 3a shows PyPy between CPython and Java).
PYPY_SPEEDUP = 4.0

# The paper sweeps 1..1e9 on 2012 hardware; today's CPython samples
# ~4x faster, pushing the crossover past 1e9, so the sweep extends two
# decades further.  The scale-free quantity reported (and asserted) is
# the *per-core compute seconds* at the crossover, the paper's "~32 s".
SWEEP = [10**k for k in range(0, 12)]


def mrs_modeled_seconds(samples: int, rate: float) -> float:
    return MRS_STARTUP + MRS_PER_OP_OVERHEAD + samples / (rate * SLOTS)


def hadoop_modeled_seconds(samples: int, python_rate: float, cluster) -> float:
    java_rate = python_rate * cluster.model.java_speedup_vs_python
    per_task = (samples / N_TASKS) / java_rate
    result = HadoopJob(cluster).run_modeled(
        map_seconds=per_task, n_map_tasks=N_TASKS,
        reduce_seconds=0.01, n_reduce_tasks=1,
    )
    return result.modeled_seconds


def measured_mrs_serial(samples: int) -> float:
    started = time.perf_counter()
    run_program(
        PiEstimator,
        ["--pi-samples", str(samples), "--pi-tasks", "4"],
        impl="serial",
    )
    return time.perf_counter() - started


def find_crossover(series_a, series_b, sweep):
    """First sample count where b (Hadoop) beats a (Mrs), or None."""
    for samples, a, b in zip(sweep, series_a, series_b):
        if b < a:
            return samples
    return None


def bisect_crossover(mrs_fn, hadoop_fn, low=1.0, high=1e12):
    """Exact sample count where the Hadoop curve crosses below Mrs.

    Both curves are monotone in n; returns None if Hadoop never wins
    by ``high``.
    """
    if hadoop_fn(high) >= mrs_fn(high):
        return None
    if hadoop_fn(low) < mrs_fn(low):
        return low
    for _ in range(80):
        mid = (low * high) ** 0.5  # geometric: the axis is log-scale
        if hadoop_fn(mid) < mrs_fn(mid):
            high = mid
        else:
            low = mid
    return high


def make_cluster():
    """21 nodes x 6 map slots = 126-way, matching the Mrs side."""
    return HadoopCluster(n_nodes=21, map_slots_per_node=6)


def test_fig3a_python_series(benchmark):
    python_rate = once(benchmark, measure_python_rate, 300_000)
    cluster = make_cluster()

    mrs_series = [mrs_modeled_seconds(n, python_rate) for n in SWEEP]
    pypy_series = [
        mrs_modeled_seconds(n, python_rate * PYPY_SPEEDUP) for n in SWEEP
    ]
    hadoop_series = [
        hadoop_modeled_seconds(n, python_rate, cluster) for n in SWEEP
    ]
    measured = {n: measured_mrs_serial(n) for n in (1, 10_000, 1_000_000)}

    rows = []
    for n, mrs_s, pypy_s, hadoop_s in zip(
        SWEEP, mrs_series, pypy_series, hadoop_series
    ):
        rows.append([
            fmt_count(n),
            fmt_seconds(mrs_s),
            fmt_seconds(pypy_s),
            fmt_seconds(hadoop_s),
            fmt_seconds(measured[n]) if n in measured else "",
        ])
    crossover = bisect_crossover(
        lambda n: mrs_modeled_seconds(n, python_rate),
        lambda n: hadoop_modeled_seconds(n, python_rate, cluster),
    )
    task_seconds_at_crossover = (
        crossover / (python_rate * SLOTS) if crossover else float("nan")
    )
    pypy_crossover = bisect_crossover(
        lambda n: mrs_modeled_seconds(n, python_rate * PYPY_SPEEDUP),
        lambda n: hadoop_modeled_seconds(n, python_rate, cluster),
    )

    print_table(
        "E4 / Fig 3a: pi run time vs samples (126 tasks, 21-node model)",
        ["samples", "Mrs CPython", "Mrs PyPy (modeled)", "Hadoop (modeled)",
         "Mrs serial 1-core (measured)"],
        rows,
        notes=[
            f"measured CPython Halton rate: {python_rate:,.0f} samples/s/core",
            f"CPython crossover at ~{fmt_count(crossover)} samples -> "
            f"per-core compute {task_seconds_at_crossover:.0f} s "
            "(paper: 'task times less than around 32 seconds')",
            "PyPy crossover at ~"
            + (fmt_count(pypy_crossover) if pypy_crossover else "beyond sweep")
            + " samples (moved right, as in the paper)",
        ],
    )

    # Left side: Mrs at least 10x faster than Hadoop for tiny jobs.
    assert hadoop_series[0] / mrs_series[0] >= 10.0
    # Right side: Hadoop eventually wins over pure CPython (Fig 3a).
    assert crossover is not None
    # The paper's ~32 s task-time window, within a loose factor.
    assert 10.0 <= task_seconds_at_crossover <= 90.0
    # PyPy moves the crossover to more samples.
    assert pypy_crossover is None or pypy_crossover > crossover
    # Measured left side: a 1-sample Mrs job is well under a second
    # locally (paper: ~2 s including cluster startup).
    assert measured[1] < 1.0
