"""Iteration pipelining bench: barrier vs bucket-granular scheduling.

The pipelined scheduler dissolves the reduce->map barrier between
iterations of identity-routed programs: iteration N+1's map task i
becomes dispatchable the moment iteration N's reduce task i commits,
while sibling reduces are still running.  This bench measures what
that buys on a real multiprocess pool:

* unfused Apiary PSO (``--pso-no-fuse``) — the identity-routing shape,
  several iterations in flight (``--pso-qmax``): per-iteration
  framework overhead (wall minus the serial compute proxy, divided by
  outer iterations) for ``--mrs-pipeline off`` vs ``buckets``;
* k-means — driver-synchronized control: the driver waits on every
  iteration to recompute centroids, so pipelining can't help and the
  two modes must tie (a regression tripwire for the off path).

Outputs must be byte-identical everywhere: pipelining changes *when*
tasks run, never what they compute.  The bench asserts the PSO
convergence log agrees across serial, mockparallel, and both
multiprocess modes, and that k-means converges identically in both
modes; it writes ``BENCH_iteration.json`` and exits 1 when the gate
fails (full mode: pipelined overhead at least ``--min-speedup`` times
lower; smoke mode: pipelined no slower than barrier plus jitter).

Usage::

    PYTHONPATH=src python benchmarks/bench_iteration.py [--smoke]
        [--procs N] [--outer N] [--repeat N] [--no-gate]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.apps.kmeans import KMeans
from repro.apps.pso.mrpso import ApiaryPSO
from repro.core.job import Job
from repro.core.main import run_program
from repro.core.options import parse_options
from repro.runtime.multiprocess import MultiprocessBackend
from reporting import fmt_seconds, print_table, write_json_table


def pso_flags(outer: int, procs: int) -> List[str]:
    """Unfused PSO with a stable partitioner and split count across
    every iteration's reduce — the identity-routing shape — and enough
    queued iterations for the scheduler to overlap.  ``sphere-slow``
    simulates an expensive objective (the paper's real workload), so
    map tasks parallelize even on machines with fewer cores than pool
    workers.  One subswarm per worker makes the benefit sharp: the
    worker that commits reduce bucket j is exactly the one freed to
    start map task j of the next iteration, so barrier mode's wait for
    the full reduce stage is pure lost time."""
    return [
        "--mrs-seed", "7", "--pso-function", "sphere-slow", "--pso-dims",
        "8", "--pso-subswarms", str(procs), "--pso-particles", "4",
        "--pso-inner", "2", "--pso-outer", str(outer), "--pso-no-fuse",
        "--pso-qmax", "3",
    ]


def km_flags(iters: int) -> List[str]:
    return [
        "--mrs-seed", "7", "--km-points", "600", "--km-clusters", "4",
        "--km-dims", "4", "--km-iters", str(iters), "--km-tol", "0",
    ]


def pso_log(program) -> List[Tuple[int, int, float]]:
    return [(r.iteration, r.evals, r.best) for r in program.convergence]


def km_log(program) -> List[float]:
    return [program.iterations_run, program.inertia] + list(
        program.shift_history
    )


def timed_run(
    program_class, flags: List[str], impl: str, **overrides
) -> Tuple[Any, float]:
    started = time.perf_counter()
    program = run_program(program_class, flags, impl=impl, **overrides)
    return program, time.perf_counter() - started


def run_pso_pool(
    flags: List[str], procs: int, mode: str, tmpdir: str
) -> Tuple[Any, float, float, int]:
    """One multiprocess PSO run with an in-memory event log; returns
    (program, wall, barrier-crossing seconds per iteration, pipelined
    dispatch count).

    The crossing metric is the per-iteration scheduling overhead this
    PR targets: for every identity edge reduce_k -> map_{k+1}, the
    latency from ``task.committed`` of reduce task j to
    ``task.started`` of map task j (both stamped by the coordinator on
    one clock).  Under the barrier scheduler that latency contains the
    whole reduce tail plus the dataset-completion handoff; under
    bucket-granular scheduling it is a single dispatch.  Unlike wall
    clock it is insensitive to how many cores the bench machine has.
    """
    opts, positional = parse_options(ApiaryPSO, list(flags))
    opts.procs = procs
    opts.pipeline = mode
    opts.tmpdir = tmpdir
    program = ApiaryPSO(opts, positional)
    backend = MultiprocessBackend(program, opts, positional)
    events = backend.observability.enable_events(unbounded=True)
    try:
        job = Job(backend, program)
        started = time.perf_counter()
        status = program.run(job)
        wall = time.perf_counter() - started
        if status not in (None, 0):
            raise RuntimeError(f"PSO exited with {status}")
        snapshot = events.snapshot()
        pipelined = backend.scheduler.pipelined_dispatches
    finally:
        backend.close()

    committed = {}
    started_at = {}
    datasets = set()
    for event in snapshot:
        fields = event.get("fields") or {}
        key = (fields.get("dataset_id"), fields.get("task_index"))
        if event["name"] == "task.committed":
            committed.setdefault(key, event["t"])
        elif event["name"] == "task.started":
            started_at.setdefault(key, event["t"])
            datasets.add(key[0])

    # Unfused PSO's computed datasets form one map/reduce chain; ids
    # are "<kind>_<global counter>", so suffix order is chain order.
    chain = sorted(
        (ds for ds in datasets if ds.partition("_")[0] in ("map", "reduce")),
        key=lambda ds: int(ds.rpartition("_")[2]),
    )
    crossings = []
    for producer, consumer in zip(chain, chain[1:]):
        if not (
            producer.startswith("reduce") and consumer.startswith("map")
        ):
            continue
        edge = [
            started_at[key] - committed[(producer, key[1])]
            for key in started_at
            if key[0] == consumer and (producer, key[1]) in committed
        ]
        if edge:
            crossings.append(sum(edge) / len(edge))
    per_iteration = sum(crossings) / len(crossings) if crossings else 0.0
    return program, wall, per_iteration, pipelined


def measure_pso(
    outer: int, procs: int, repeat: int, workdir: str
) -> Tuple[Dict[str, float], List[str]]:
    """Off/buckets interleaved round by round (machine drift hits both
    modes equally): best-of-``repeat`` walls, median-of-``repeat``
    crossing overheads."""
    flags = pso_flags(outer, procs)
    failures: List[str] = []
    serial_best = float("inf")
    reference = None
    for index in range(repeat):
        program, seconds = timed_run(ApiaryPSO, flags, impl="serial")
        serial_best = min(serial_best, seconds)
        reference = pso_log(program)
    if not reference:
        failures.append("PSO produced no convergence log")
        reference = []

    mock, _ = timed_run(ApiaryPSO, flags, impl="mockparallel")
    if pso_log(mock) != reference:
        failures.append("PSO mockparallel log diverged from serial")

    walls = {"off": float("inf"), "buckets": float("inf")}
    crossings: Dict[str, List[float]] = {"off": [], "buckets": []}
    for index in range(repeat):
        for mode in ("off", "buckets"):
            program, wall, crossing, pipelined = run_pso_pool(
                flags, procs, mode, os.path.join(workdir, f"pso_{mode}_{index}")
            )
            walls[mode] = min(walls[mode], wall)
            crossings[mode].append(crossing)
            if pso_log(program) != reference:
                failures.append(
                    f"PSO multiprocess/{mode} log diverged from serial"
                )
            if mode == "off" and pipelined:
                failures.append(
                    f"--mrs-pipeline off crossed the barrier {pipelined}x"
                )
            if mode == "buckets" and not pipelined:
                failures.append("buckets mode never dispatched early")

    def median(values: List[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    overhead = {mode: median(crossings[mode]) for mode in crossings}
    measured = {
        "pso_serial_seconds": serial_best,
        "pso_barrier_seconds": walls["off"],
        "pso_pipelined_seconds": walls["buckets"],
        "pso_barrier_overhead_per_iteration": overhead["off"],
        "pso_pipelined_overhead_per_iteration": overhead["buckets"],
        "pso_overhead_speedup": (
            overhead["off"] / overhead["buckets"]
            if overhead["buckets"] > 0
            else float("inf")
        ),
    }
    return measured, failures


def measure_kmeans(
    iters: int, procs: int, workdir: str
) -> Tuple[Dict[str, float], List[str]]:
    """Driver-synchronized control: per-iteration wall must tie across
    modes (the driver's wait *is* the barrier), outputs identical."""
    flags = km_flags(iters)
    failures: List[str] = []
    walls = {}
    logs = {}
    for mode in ("off", "buckets"):
        program, seconds = timed_run(
            KMeans,
            flags,
            impl="multiprocess",
            procs=procs,
            pipeline=mode,
            tmpdir=os.path.join(workdir, f"km_{mode}"),
        )
        walls[mode] = seconds
        logs[mode] = km_log(program)
    if logs["off"] != logs["buckets"]:
        failures.append("k-means outputs diverged between pipeline modes")
    iterations = max(1, iters)
    return {
        "kmeans_barrier_seconds_per_iteration": walls["off"] / iterations,
        "kmeans_pipelined_seconds_per_iteration": walls["buckets"] / iterations,
    }, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=4,
                        help="pool workers (acceptance floor is 4)")
    parser.add_argument("--outer", type=int, default=30,
                        help="PSO outer iterations")
    parser.add_argument("--km-iters", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="full-mode gate: barrier/pipelined "
                        "per-iteration overhead ratio floor")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI; gate relaxes to 'pipelined no "
        "slower than barrier' (absolute times are too noisy on "
        "shared runners to gate a ratio)",
    )
    parser.add_argument("--no-gate", action="store_true",
                        help="report only; never fail")
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_iteration.json"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.outer, args.km_iters, args.repeat = 10, 4, 2

    workdir = tempfile.mkdtemp(prefix="bench_iteration_")
    try:
        pso, failures = measure_pso(
            args.outer, args.procs, args.repeat, workdir
        )
        kmeans, km_failures = measure_kmeans(
            args.km_iters, args.procs, workdir
        )
        failures += km_failures
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    measured = dict(pso)
    measured.update(kmeans)

    # Smoke relaxes the ratio floor to "pipelined no worse than
    # barrier": loaded CI runners compress the barrier-mode reduce
    # tail, which shrinks the numerator, never the sign.
    floor = 1.0 if args.smoke else args.min_speedup
    speedup = pso["pso_overhead_speedup"]
    if speedup < floor:
        failures.append(
            f"per-iteration overhead speedup {speedup:.2f}x below the "
            f"{floor:.2f}x floor"
        )

    rows = [
        ["PSO serial (compute proxy)", fmt_seconds(pso["pso_serial_seconds"]),
         "-"],
        ["PSO barrier (--mrs-pipeline off)",
         fmt_seconds(pso["pso_barrier_seconds"]),
         fmt_seconds(pso["pso_barrier_overhead_per_iteration"])],
        ["PSO pipelined (buckets)",
         fmt_seconds(pso["pso_pipelined_seconds"]),
         fmt_seconds(pso["pso_pipelined_overhead_per_iteration"])],
        ["k-means barrier", "-",
         fmt_seconds(kmeans["kmeans_barrier_seconds_per_iteration"])],
        ["k-means pipelined", "-",
         fmt_seconds(kmeans["kmeans_pipelined_seconds_per_iteration"])],
    ]
    title = (
        f"Iteration pipelining ({args.procs} workers, "
        f"{args.outer} PSO outer iters): overhead speedup "
        f"{speedup:.2f}x"
    )
    print_table(title, ["configuration", "wall", "overhead/iter"], rows)
    measured.update(
        procs=float(args.procs),
        outer_iterations=float(args.outer),
        smoke=float(bool(args.smoke)),
    )
    write_json_table(
        args.out,
        title,
        ["metric", "value"],
        [[key, value] for key, value in sorted(measured.items())],
        notes=[f"gate: {failure}" for failure in failures] or None,
    )
    if failures:
        for failure in failures:
            print(f"GATE: {failure}", file=sys.stderr)
        return 0 if args.no_gate else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
