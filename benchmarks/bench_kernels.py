"""Per-kernel microbenchmark: native C shuffle loops vs pure Python.

Times each kernel in :mod:`repro.native` against the pure-Python loop
it replaces, over a wordcount-shaped workload (Zipf-distributed str
keys).  Unlike ``bench_shuffle`` — which times the whole data plane
end to end — this isolates where the C time goes:

* ``partition``   — batch split assignment vs a per-key CRC+mix loop
* ``scatter``     — stable partition scatter vs per-split index lists
* ``sort``        — C mergesort permutation vs ``sorted(range, key=)``
* ``group``       — hash-table group scatter vs dict grouping + sort
* ``frame``       — batch ``.mrsb`` framing vs a per-record pack loop
* ``scan``        — batch record-boundary scan vs per-record unpack
* ``merge``       — fused k-way file merge vs ``heapq.merge`` streams

Every native result is checked against the pure reference before
timing.  Results land in ``BENCH_kernels.json`` (see ``--out``).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import shutil
import struct
import sys
import tempfile
import time
from typing import Any, Callable, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

import numpy as np

from repro.datagen.zipf import ZipfVocabulary
from repro.io.bucket import (
    Bucket,
    FileBucket,
    group_sorted_records,
    merge_sorted_records,
    native_merge_plan,
    native_merged_groups,
    record_key,
    sorted_records_from_url,
)
from repro.io.partition import hash_partition_bytes
from repro.native import kernels as native_kernels
from repro.util.hashing import _MASK, _MIX, _crc32
from reporting import fmt_count, fmt_seconds, print_table, write_json_table

N_SPLITS = 8
_HEADER = struct.Struct("!II")


def _best_of(fn: Callable[[], Any], repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _make_keys(n_records: int, vocab_size: int, seed: int = 42) -> List[bytes]:
    vocab = ZipfVocabulary(vocab_size=vocab_size)
    rng = np.random.default_rng(seed)
    words = vocab.sample_words(n_records, rng)
    return [b"s:" + w.encode("utf-8") for w in words]


def bench_partition(native, keys) -> Tuple[Any, Callable, Callable]:
    def pure():
        mix, mask, crc, n = _MIX, _MASK, _crc32, N_SPLITS
        return [((crc(kb) * mix) & mask) % n for kb in keys]

    def fast():
        return native.splits_for(keys, N_SPLITS)

    assert list(fast()) == pure()
    return "partition", pure, fast


def bench_scatter(native, keys) -> Tuple[Any, Callable, Callable]:
    def pure():
        splits = [hash_partition_bytes(kb, N_SPLITS) for kb in keys]
        out: List[List[int]] = [[] for _ in range(N_SPLITS)]
        for i, split in enumerate(splits):
            out[split].append(i)
        return out

    def fast():
        return native.partition_scatter(keys, N_SPLITS)

    order, bounds = fast()
    flat = [i for part in pure() for i in part]
    assert list(order) == flat
    return "scatter", pure, fast


def bench_sort(native, keys) -> Tuple[Any, Callable, Callable]:
    def pure():
        return sorted(range(len(keys)), key=keys.__getitem__)

    def fast():
        return native.sort_index(keys)

    assert list(fast()) == pure()
    return "sort", pure, fast


def bench_group(native, keys) -> Tuple[Any, Callable, Callable]:
    bucket = Bucket()
    for kb in keys:
        bucket.addpair((kb[2:].decode("utf-8"), 1), kb)

    def pure():
        groups = bucket.hash_grouped_records()
        groups.sort(key=record_key)
        return groups

    def fast():
        return native.group_scatter(keys, sort_groups=True)

    ngroups, order, bounds = fast()
    assert ngroups == len(pure())
    return "group", pure, fast


def bench_frame(native, keys) -> Tuple[Any, Callable, Callable]:
    values = [b"\x00" * 8] * len(keys)

    def pure():
        pack = _HEADER.pack
        chunks = []
        for kb, vb in zip(keys, values):
            chunks.append(pack(len(kb), len(vb)))
            chunks.append(kb)
            chunks.append(vb)
        return b"".join(chunks)

    def fast():
        return native.frame(keys, values)

    assert bytes(fast()) == pure()
    return "frame", pure, fast


def bench_scan(native, keys) -> Tuple[Any, Callable, Callable]:
    values = [b"\x00" * 8] * len(keys)
    buf = bytes(native.frame(keys, values))

    def pure():
        unpack, size = _HEADER.unpack_from, _HEADER.size
        pos, end = 0, len(buf)
        out = []
        while pos + size <= end:
            klen, vlen = unpack(buf, pos)
            kstart = pos + size
            vstart = kstart + klen
            vend = vstart + vlen
            if vend > end:
                break
            out.append((kstart, vstart, vend))
            pos = vend
        return out

    def fast():
        return native.scan(buf)

    count, triples = fast()
    ref = pure()
    assert count == len(ref)
    assert list(triples[: 3 * count]) == [x for t in ref for x in t]
    return "scan", pure, fast


def bench_merge(
    native, keys, tmpdir: str
) -> Tuple[Any, Callable, Callable]:
    # Four key-sorted .mrsb spill files, as the reduce side sees them.
    n_streams = 4
    buckets = []
    for source in range(n_streams):
        shard = sorted(
            (kb[2:].decode("utf-8"), 1)
            for kb in keys[source::n_streams]
        )
        path = os.path.join(tmpdir, f"merge_{source}.mrsb")
        spill = FileBucket(
            path,
            source=source,
            key_serializer="str",
            value_serializer="int",
            retain=False,
        )
        for pair in shard:
            spill.addpair(pair)
        spill.open_writer()
        spill.close_writer()
        bucket = Bucket(source=source, split=0, url="file:" + path)
        bucket.url_sorted = True
        bucket.key_serializer = "str"
        bucket.value_serializer = "int"
        buckets.append(bucket)
    plan = native_merge_plan(buckets)
    assert plan is not None, "merge plan must engage for sorted local files"

    def pure():
        streams = [
            sorted_records_from_url(b.url, True, "str", "int")
            for b in buckets
        ]
        return [
            (kb, key, sum(values))
            for kb, key, values in group_sorted_records(
                merge_sorted_records(streams)
            )
        ]

    def fast():
        return [
            (kb, key, sum(values))
            for kb, key, values in native_merged_groups(plan, "str", "int")
        ]

    assert fast() == pure()
    return "merge", pure, fast


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=300_000)
    parser.add_argument("--vocab", type=int, default=50_000)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: verifies parity and report plumbing",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_kernels.json"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.records, args.repeat = 20_000, 1

    native_kernels.set_mode("auto")
    native = native_kernels.get()
    if native is None:
        print("no C compiler found: nothing to benchmark", file=sys.stderr)
        return 1

    keys = _make_keys(args.records, args.vocab)
    n = len(keys)
    tmpdir = tempfile.mkdtemp(prefix="bench_kernels_")
    try:
        benches = [
            bench_partition(native, keys),
            bench_scatter(native, keys),
            bench_sort(native, keys),
            bench_group(native, keys),
            bench_frame(native, keys),
            bench_scan(native, keys),
            bench_merge(native, keys, tmpdir),
        ]
        rows = []
        for name, pure, fast in benches:
            pure_s = _best_of(pure, args.repeat)
            fast_s = _best_of(fast, args.repeat)
            rows.append(
                [
                    name,
                    n,
                    round(pure_s, 4),
                    round(fast_s, 4),
                    round(n / pure_s),
                    round(n / fast_s),
                    round(pure_s / fast_s, 2),
                ]
            )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    headers = [
        "kernel",
        "records",
        "pure_seconds",
        "native_seconds",
        "pure_records_per_s",
        "native_records_per_s",
        "speedup",
    ]
    notes = [
        f"workload: {n} Zipf str keys (vocab {args.vocab}), "
        f"{N_SPLITS} splits, best of {args.repeat}",
        "native results verified equal to the pure reference before timing",
    ]
    if args.smoke:
        notes.append("smoke run: workload too small for a meaningful timing")
    print_table(
        "Native shuffle kernels vs pure Python",
        headers,
        [
            [
                r[0],
                fmt_count(r[1]),
                fmt_seconds(r[2]),
                fmt_seconds(r[3]),
                fmt_count(r[4]),
                fmt_count(r[5]),
                r[6],
            ]
            for r in rows
        ],
        notes,
    )
    write_json_table(
        os.path.abspath(args.out),
        "Native shuffle kernels vs pure Python",
        headers,
        rows,
        notes,
    )
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
