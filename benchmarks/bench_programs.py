"""E1 — Programs 1 vs 2: WordCount source-size comparison (section V-A).

The paper's first subjective claim: a complete Mrs WordCount is ~10
lines of Python while the equivalent Hadoop WordCount is a page of
Java.  We measure our actual Program 1 (the live source of
repro.apps.wordcount.WordCount) against the Hadoop example the paper
reprints (embedded below, verbatim structure).
"""

import inspect
import textwrap

from repro.apps.wordcount import WordCount
from reporting import once, print_table

#: Program 2 of the paper: Hadoop's bundled WordCount (imports omitted,
#: as in the paper).
HADOOP_WORDCOUNT_JAVA = textwrap.dedent(
    """
    public class WordCount {
      public static class TokenizerMapper
           extends Mapper<Object, Text, Text, IntWritable> {
        private final static IntWritable one = new IntWritable(1);
        private Text word = new Text();
        public void map(Object key, Text value, Context context
                        ) throws IOException, InterruptedException {
          StringTokenizer itr = new StringTokenizer(value.toString());
          while (itr.hasMoreTokens()) {
            word.set(itr.nextToken());
            context.write(word, one);
          }
        }
      }
      public static class IntSumReducer
           extends Reducer<Text,IntWritable,Text,IntWritable> {
        private IntWritable result = new IntWritable();
        public void reduce(Text key, Iterable<IntWritable> values,
                           Context context
                           ) throws IOException, InterruptedException {
          int sum = 0;
          for (IntWritable val : values) {
            sum += val.get();
          }
          result.set(sum);
          context.write(key, result);
        }
      }
      public static void main(String[] args) throws Exception {
        Configuration conf = new Configuration();
        String[] otherArgs =
          new GenericOptionsParser(conf, args).getRemainingArgs();
        if (otherArgs.length != 2) {
          System.err.println("Usage: wordcount <in> <out>");
          System.exit(2);
        }
        Job job = new Job(conf, "word count");
        job.setJarByClass(WordCount.class);
        job.setMapperClass(TokenizerMapper.class);
        job.setCombinerClass(IntSumReducer.class);
        job.setReducerClass(IntSumReducer.class);
        job.setOutputKeyClass(Text.class);
        job.setOutputValueClass(IntWritable.class);
        FileInputFormat.addInputPath(job, new Path(otherArgs[0]));
        FileOutputFormat.setOutputPath(job, new Path(otherArgs[1]));
        System.exit(job.waitForCompletion(true) ? 0 : 1);
      }
    }
    """
).strip()


def code_lines(text: str) -> int:
    """Non-blank, non-comment-only lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("#", "//", "/*", "*", '"""', "'''")):
            continue
        count += 1
    return count


def mrs_wordcount_source() -> str:
    """The complete runnable Mrs program (Program 1): class + entry."""
    body = inspect.getsource(WordCount)
    return "import repro as mrs\n\n" + body + (
        "\nif __name__ == '__main__':\n    mrs.main(WordCount)\n"
    )


def test_program_size_comparison(benchmark):
    mrs_source = mrs_wordcount_source()
    mrs_lines = once(benchmark, code_lines, mrs_source)
    java_lines = code_lines(HADOOP_WORDCOUNT_JAVA)
    ratio = java_lines / mrs_lines
    print_table(
        "E1: WordCount program size (Programs 1 vs 2)",
        ["implementation", "code lines", "paper characterization"],
        [
            ["Mrs / Python", mrs_lines, "~10 lines, 'follows trivially'"],
            ["Hadoop / Java", java_lines, "a full page, 'marshalling is verbose'"],
            ["ratio", f"{ratio:.1f}x", "paper: roughly an order of magnitude"],
        ],
    )
    assert mrs_lines <= 15
    assert java_lines >= 4 * mrs_lines
