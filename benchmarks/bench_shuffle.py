"""Shuffle data-plane microbenchmark: encode-once vs legacy pipeline.

Exercises the intermediate data plane end to end on a wordcount-shaped
workload (Zipf-distributed keys: many records, few distinct heavy
keys, a long tail): map emit -> partition -> combine -> spill to
``.mrsb`` -> shuffle merge -> reduce -> output file.

Two pipelines run over the same input:

* ``legacy`` — a frozen in-file copy of the pre-optimization data
  plane: per-append ``sort_key`` encodes, per-record blake2b
  partition hashing, write-through ``writepair`` spills with a
  retained in-memory copy, materialize-then-sort merges.
* ``encode-once`` — the live :mod:`repro.io.bucket` pipeline: key
  bytes computed once at emit and carried through partitioning,
  sorting, grouping, and the merge; buffered batch spills; streaming
  merges of sorted files.  Timed twice: with the native C shuffle
  kernels disabled (``MRS_NATIVE=off``, the pure-Python floor) and
  enabled (batch partition scatter, C record framing/scanning, C sort
  and grouping, fused k-way merge).

The run verifies the two pipelines reduce to exactly the same
(key, count) pairs — and that the native and pure encode-once runs
produce byte-identical reduce files — then reports records/second
for each and the speedup.  Results land in ``BENCH_shuffle.json``
(see ``--out``).

Usage::

    PYTHONPATH=src python benchmarks/bench_shuffle.py [--smoke]
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import itertools
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

import numpy as np

from repro.datagen.zipf import ZipfVocabulary
from repro.io import formats
from repro.io.bucket import Bucket, FileBucket
from repro.io.urls import fetch_pairs
from repro.native import kernels as native_kernels
from reporting import fmt_count, fmt_seconds, print_table, write_json_table

KeyValue = Tuple[Any, Any]

# Wordcount's natural serializers: str keys, int counts (skipping
# pickle is idiomatic for hot jobs and applies to both pipelines).
KEY_SERIALIZER = "str"
VALUE_SERIALIZER = "int"


# ----------------------------------------------------------------------
# Legacy pipeline — a frozen copy of the pre-optimization data plane.
# Deliberately duplicated here (not imported) so the baseline stays
# fixed as the live code evolves.
# ----------------------------------------------------------------------


import pickle
import struct


def _legacy_key_to_bytes(key: Any) -> bytes:
    """Verbatim pre-optimization ``key_to_bytes``: an isinstance chain
    evaluated on every call (the live version dispatches the common
    exact types through a table)."""
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bool):
        return b"B:" + (b"1" if key else b"0")
    if isinstance(key, int):
        if type(key) is int:
            return b"i:" + str(key).encode("ascii")
        cls = type(key)
        type_tag = f"{cls.__module__}.{cls.__qualname__}".encode("utf-8")
        return b"I:" + type_tag + b":" + str(int(key)).encode("ascii")
    return b"p:" + pickle.dumps(key, 2)


def _legacy_sort_key(pair: KeyValue) -> bytes:
    return _legacy_key_to_bytes(pair[0])


def _legacy_group_sorted(
    pairs: Iterable[KeyValue],
) -> Iterator[Tuple[Any, Iterator[Any]]]:
    for _, group in itertools.groupby(pairs, key=_legacy_sort_key):
        first_key, first_value = next(group)

        def values(first_value=first_value, group=group) -> Iterator[Any]:
            yield first_value
            for _, value in group:
                yield value

        yield first_key, values()


# Pre-PR serializer internals, frozen: the live ``str`` serializer now
# decodes via the raw ``bytes.decode`` method and the live ``int``
# serializer grew an exact-type fast path, both part of this
# optimization pass — the baseline must not inherit them.
_LEGACY_INT_STRUCT = struct.Struct("!q")


def _legacy_str_dumps(obj: Any) -> bytes:
    if not isinstance(obj, str):
        raise TypeError(f"str serializer requires str, got {type(obj).__name__}")
    return obj.encode("utf-8")


def _legacy_str_loads(data: bytes) -> str:
    return data.decode("utf-8")


def _legacy_int_dumps(obj: Any) -> bytes:
    if not isinstance(obj, int) or isinstance(obj, bool):
        raise TypeError(f"int serializer requires int, got {type(obj).__name__}")
    try:
        return _LEGACY_INT_STRUCT.pack(obj)
    except struct.error:
        return b"L" + str(obj).encode("ascii")


def _legacy_int_loads(data: bytes) -> int:
    if len(data) == _LEGACY_INT_STRUCT.size:
        return _LEGACY_INT_STRUCT.unpack(data)[0]
    if data[:1] == b"L":
        return int(data[1:])
    raise ValueError(f"malformed int encoding of length {len(data)}")


from repro.io.serializers import Serializer as _Serializer

_LEGACY_KEY_S = _Serializer("legacy-str", _legacy_str_dumps, _legacy_str_loads)
_LEGACY_VALUE_S = _Serializer("legacy-int", _legacy_int_dumps, _legacy_int_loads)

_LEGACY_LEN_STRUCT = struct.Struct("!II")
_LEGACY_BIN_MAGIC = b"MRSB\x01"


def _legacy_fetch_pairs(path: str) -> List[KeyValue]:
    """Pre-PR ``fetch_pairs``: materialize the whole file as a pair
    list, three ``read`` calls and attribute-resolved ``loads`` per
    record (the live reader parses out of large chunks and can rebuild
    cached key bytes; the baseline must not)."""
    pairs: List[KeyValue] = []
    key_s, value_s = _LEGACY_KEY_S, _LEGACY_VALUE_S
    with open(path, "rb") as fileobj:
        magic = fileobj.read(len(_LEGACY_BIN_MAGIC))
        if magic != _LEGACY_BIN_MAGIC:
            raise ValueError(f"not a BinWriter file (magic={magic!r})")
        read = fileobj.read
        while True:
            header = read(_LEGACY_LEN_STRUCT.size)
            if not header:
                return pairs
            if len(header) != _LEGACY_LEN_STRUCT.size:
                raise ValueError("truncated record header")
            klen, vlen = _LEGACY_LEN_STRUCT.unpack(header)
            kb = read(klen)
            vb = read(vlen)
            if len(kb) != klen or len(vb) != vlen:
                raise ValueError("truncated record body")
            pairs.append((key_s.loads(kb), value_s.loads(vb)))


class LegacyBucket:
    """Pre-optimization in-memory bucket: re-encodes keys on every
    append (two ``sort_key`` calls), sort, and group."""

    def __init__(self, source: int = 0, split: int = 0):
        self.source = source
        self.split = split
        self._pairs: List[KeyValue] = []
        self._sorted = True

    def addpair(self, pair: KeyValue) -> None:
        if self._pairs and self._sorted:
            self._sorted = _legacy_sort_key(self._pairs[-1]) <= _legacy_sort_key(
                pair
            )
        self._pairs.append(pair)

    def sorted_pairs(self) -> List[KeyValue]:
        if not self._sorted:
            self._pairs.sort(key=_legacy_sort_key)
            self._sorted = True
        return self._pairs

    def grouped(self) -> Iterator[Tuple[Any, Iterator[Any]]]:
        return _legacy_group_sorted(self.sorted_pairs())


class LegacyFileBucket(LegacyBucket):
    """Pre-optimization file bucket: write-through ``writepair`` per
    append plus a retained in-memory copy."""

    def __init__(self, path: str, source: int = 0, split: int = 0):
        super().__init__(source=source, split=split)
        self.path = os.path.abspath(path)
        self._writer = None

    def open_writer(self):
        if self._writer is None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            writer_cls = formats.writer_for(self.path)
            self._writer = writer_cls(
                open(self.path, "wb"),
                key_serializer=_LEGACY_KEY_S,
                value_serializer=_LEGACY_VALUE_S,
            )
        return self._writer

    def addpair(self, pair: KeyValue) -> None:
        super().addpair(pair)
        self.open_writer().writepair(pair)

    def close_writer(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def _legacy_stable_hash(key: Any) -> int:
    """The pre-optimization placement hash: a ``blake2b`` digest per
    emitted record (frozen here; the live ``stable_hash`` is now a
    CRC-based mix)."""
    digest = hashlib.blake2b(_legacy_key_to_bytes(key), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _legacy_partition(key: Any, n_splits: int) -> int:
    return _legacy_stable_hash(key) % n_splits


def legacy_pipeline(
    map_inputs: List[List[str]], n_splits: int, tmpdir: str
) -> List[str]:
    """Run map -> combine -> spill -> merge -> reduce the pre-PR way.

    Returns the reduce output file paths (one per split).
    """
    spill_paths: List[List[str]] = [[] for _ in range(n_splits)]
    for source, words in enumerate(map_inputs):
        staging = [LegacyBucket(source=source, split=s) for s in range(n_splits)]
        for word in words:
            pair = (word, 1)
            staging[_legacy_partition(word, n_splits)].addpair(pair)
        for bucket in staging:
            # Combine: local sum per key (the paper's wordcount combiner).
            combined = LegacyBucket(source=source, split=bucket.split)
            for key, values in bucket.grouped():
                combined.addpair((key, sum(values)))
            path = os.path.join(
                tmpdir, f"legacy_map_{source}_{bucket.split}.mrsb"
            )
            spill = LegacyFileBucket(path, source=source, split=bucket.split)
            for pair in combined._pairs:
                spill.addpair(pair)
            spill.close_writer()
            spill_paths[bucket.split].append(path)
    out_paths = []
    for split in range(n_splits):
        inputs = []
        for path in spill_paths[split]:
            bucket = LegacyBucket(split=split)
            for pair in _legacy_fetch_pairs(path):
                bucket.addpair(pair)
            inputs.append(bucket)
        merged = heapq.merge(
            *[b.sorted_pairs() for b in inputs], key=_legacy_sort_key
        )
        out_path = os.path.join(tmpdir, f"legacy_reduce_{split}.mrsb")
        out = LegacyFileBucket(out_path, split=split)
        for key, values in _legacy_group_sorted(merged):
            out.addpair((key, sum(values)))
        out.close_writer()
        out_paths.append(out_path)
    return out_paths


# ----------------------------------------------------------------------
# Encode-once pipeline — the live data plane, mirroring the taskrunner.
# ----------------------------------------------------------------------


def current_pipeline(
    map_inputs: List[List[str]], n_splits: int, tmpdir: str
) -> List[str]:
    """The same job through the live encode-once data plane.

    Uses the actual taskrunner building blocks — ``make_hash_emitter``
    for the map-side emit/partition loop, ``sorted_grouped_lists`` for
    the combiner, and ``_merged_groups`` for the reduce-side merge —
    so whichever mode the native kernels are in (``auto``/``off``) is
    exactly what a live job would run.
    """
    from repro.runtime.taskrunner import _merged_groups, make_hash_emitter

    spills: List[List[FileBucket]] = [[] for _ in range(n_splits)]
    for source, words in enumerate(map_inputs):
        staging = [Bucket(source=source, split=s) for s in range(n_splits)]
        emitter = make_hash_emitter(staging, n_splits)
        # One emit() per map-function call, as the taskrunner does —
        # a "line" of input at a time, not the whole task's stream.
        for start in range(0, len(words), 10):
            emitter.emit((word, 1) for word in words[start : start + 10])
        emitter.flush()
        for bucket in staging:
            # Combine: group (native scatter or hash-group + sort) and
            # sum per key, keeping the spill streamable.
            groups = bucket.sorted_grouped_lists()
            combined = Bucket(source=source, split=bucket.split)
            add_key, add_pair = combined.collector()
            for keybytes, key, values in groups:
                add_key(keybytes)
                add_pair((key, sum(values)))
            path = os.path.join(
                tmpdir, f"new_map_{source}_{bucket.split}.mrsb"
            )
            spill = FileBucket(
                path,
                source=source,
                split=bucket.split,
                key_serializer=KEY_SERIALIZER,
                value_serializer=VALUE_SERIALIZER,
                retain=False,
            )
            spill.absorb(combined)
            spill.open_writer()
            spill.close_writer()
            spills[bucket.split].append(spill)
    out_paths = []
    for split in range(n_splits):
        inputs = []
        for spill in spills[split]:
            # Reduce-side buckets are URL-only, as in the runtimes: the
            # merge streams straight from the files.
            bucket = Bucket(
                source=spill.source, split=split, url="file:" + spill.path
            )
            bucket.url_sorted = spill.url_sorted
            bucket.key_serializer = KEY_SERIALIZER
            bucket.value_serializer = VALUE_SERIALIZER
            inputs.append(bucket)
        out_path = os.path.join(tmpdir, f"new_reduce_{split}.mrsb")
        out = FileBucket(
            out_path,
            split=split,
            key_serializer=KEY_SERIALIZER,
            value_serializer=VALUE_SERIALIZER,
            retain=False,
        )
        for keybytes, key, values in _merged_groups(inputs):
            out.addpair((key, sum(values)), keybytes)
        out.close_writer()
        out_paths.append(out_path)
    return out_paths


def pure_pipeline(
    map_inputs: List[List[str]], n_splits: int, tmpdir: str
) -> List[str]:
    """Encode-once pipeline with the native kernels forced off."""
    native_kernels.set_mode("off")
    try:
        return current_pipeline(map_inputs, n_splits, tmpdir)
    finally:
        native_kernels.set_mode("auto")


def native_pipeline(
    map_inputs: List[List[str]], n_splits: int, tmpdir: str
) -> List[str]:
    """Encode-once pipeline with the native kernels engaged."""
    native_kernels.set_mode("auto")
    return current_pipeline(map_inputs, n_splits, tmpdir)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def generate_inputs(
    n_records: int, n_maps: int, vocab_size: int, seed: int = 42
) -> List[List[str]]:
    vocab = ZipfVocabulary(vocab_size=vocab_size)
    rng = np.random.default_rng(seed)
    per_map = n_records // n_maps
    return [vocab.sample_words(per_map, rng) for _ in range(n_maps)]


def verify_equivalent(tmpdir: str, n_splits: int) -> None:
    """Both pipelines must reduce to exactly the same (key, count) set.

    The pipelines place keys with different hashes (the legacy blake2b
    baseline vs the live CRC mix), so individual split files are not
    comparable byte for byte — the *union* of reduce outputs must match
    pair for pair.  (Byte-identity of the new write path against a
    pre-PR-style reference writer is covered by the data-plane
    equivalence tests.)
    """

    def outputs(prefix: str) -> List[KeyValue]:
        pairs: List[KeyValue] = []
        for split in range(n_splits):
            pairs.extend(
                fetch_pairs(
                    "file:" + os.path.join(tmpdir, f"{prefix}_{split}.mrsb"),
                    key_serializer=KEY_SERIALIZER,
                    value_serializer=VALUE_SERIALIZER,
                )
            )
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    if outputs("legacy_reduce") != outputs("new_reduce"):
        raise SystemExit(
            "OUTPUT MISMATCH: legacy and encode-once reduce outputs differ"
        )


def verify_native_identical(
    map_inputs: List[List[str]], n_splits: int, tmpdir: str
) -> None:
    """Native-on and native-off runs must write byte-identical files."""

    def digest(paths: List[str]) -> List[bytes]:
        hashes = []
        for path in paths:
            with open(path, "rb") as f:
                hashes.append(hashlib.sha256(f.read()).digest())
        return hashes

    pure = digest(pure_pipeline(map_inputs, n_splits, tmpdir))
    native = digest(native_pipeline(map_inputs, n_splits, tmpdir))
    if pure != native:
        raise SystemExit(
            "OUTPUT MISMATCH: native kernels changed reduce output bytes"
        )


def time_pipeline(
    fn: Callable[[List[List[str]], int, str], List[str]],
    map_inputs: List[List[str]],
    n_splits: int,
    tmpdir: str,
    repeat: int,
) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn(map_inputs, n_splits, tmpdir)
        best = min(best, time.perf_counter() - started)
    return best


def time_pipelines_interleaved(
    fns: List[Callable[[List[List[str]], int, str], List[str]]],
    map_inputs: List[List[str]],
    n_splits: int,
    tmpdir: str,
    repeat: int,
) -> List[float]:
    """Best-of-``repeat`` for each pipeline, with rounds interleaved.

    Alternating the pipelines inside each round (instead of timing one
    pipeline's repeats back to back) means slow drift in machine load
    hits both measurements equally rather than skewing the ratio.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeat):
        for i, fn in enumerate(fns):
            started = time.perf_counter()
            fn(map_inputs, n_splits, tmpdir)
            best[i] = min(best[i], time.perf_counter() - started)
    return best


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=500_000)
    parser.add_argument("--maps", type=int, default=4)
    parser.add_argument("--splits", type=int, default=4)
    parser.add_argument("--vocab", type=int, default=50_000)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: verifies byte-identity and report "
        "plumbing, not a meaningful timing",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_shuffle.json"),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.records, args.maps, args.splits, args.repeat = 20_000, 2, 2, 1

    map_inputs = generate_inputs(args.records, args.maps, args.vocab)
    n_records = sum(len(words) for words in map_inputs)
    native_kernels.set_mode("auto")
    have_native = native_kernels.get() is not None
    tmpdir = tempfile.mkdtemp(prefix="bench_shuffle_")
    try:
        pipelines = [legacy_pipeline, pure_pipeline]
        if have_native:
            pipelines.append(native_pipeline)
        timings = time_pipelines_interleaved(
            pipelines, map_inputs, args.splits, tmpdir, args.repeat
        )
        verify_equivalent(tmpdir, args.splits)
        if have_native:
            verify_native_identical(map_inputs, args.splits, tmpdir)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    legacy_seconds, pure_seconds = timings[0], timings[1]
    headers = ["pipeline", "records", "seconds", "records_per_s", "speedup"]

    def row(label: str, seconds: float) -> List[Any]:
        return [
            label,
            n_records,
            round(seconds, 4),
            round(n_records / seconds),
            round(legacy_seconds / seconds, 2),
        ]

    rows = [
        row("legacy (pre-PR)", legacy_seconds),
        row("encode-once (MRS_NATIVE=off)", pure_seconds),
    ]
    if have_native:
        rows.append(row("encode-once + native kernels", timings[2]))
    notes = [
        f"workload: {n_records} wordcount records, Zipf vocab "
        f"{args.vocab}, {args.maps} map tasks x {args.splits} splits, "
        f"best of {args.repeat}",
        "reduce outputs verified pair-identical across pipelines",
    ]
    if have_native:
        notes.append(
            "native and pure encode-once runs verified byte-identical"
        )
    else:
        notes.append("no C compiler found: native kernel row omitted")
    if args.smoke:
        notes.append("smoke run: workload too small for a meaningful timing")
    print_table(
        "Shuffle data plane: legacy vs encode-once",
        headers,
        [
            [r[0], fmt_count(r[1]), fmt_seconds(r[2]), fmt_count(r[3]), r[4]]
            for r in rows
        ],
        notes,
    )
    write_json_table(
        os.path.abspath(args.out),
        "Shuffle data plane: legacy vs encode-once",
        headers,
        rows,
        notes,
    )
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
