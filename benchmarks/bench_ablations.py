"""A1 — Ablations of the design choices DESIGN.md calls out.

1. **Combiner** (section V-A): WordCount with and without the local
   reduce — measures the shrinkage of intermediate records that would
   cross the network.
2. **Iteration affinity** (section IV-A): the scheduler's preference
   for re-running task *i* on the slave that ran it last iteration —
   measured as locality hit rate over a simulated iterative workload.
3. **ReduceMap fusion** (section IV-A): one barrier per PSO iteration
   instead of two — measured as operation count and wall time on a
   real 2-slave cluster.
4. **Heartbeat batching** (hadoopsim): stock one-task-per-heartbeat
   vs the multiple-assignment patch — quantifies why wave scheduling
   dominates short Hadoop jobs.
"""

import time

from repro.apps.pso.mrpso import ApiaryPSO
from repro.apps.wordcount import WordCount, WordCountCombined
from repro.core.dataset import LocalData, make_map_data
from repro.core.options import default_options
from repro.hadoopsim import HadoopCluster, HadoopJob
from repro.hadoopsim.costmodel import HadoopCostModel
from repro.runtime import taskrunner
from repro.runtime.cluster import run_on_cluster
from repro.runtime.scheduler import ScheduledDataset, Scheduler
from reporting import fmt_seconds, once, print_table


def map_output_records(program, lines, combiner_name):
    """Total records leaving one map task (post-combiner if any)."""
    source = LocalData([(i, line) for i, line in enumerate(lines)])
    dataset = make_map_data(
        source, "map", splits=4, combiner=combiner_name
    )
    buckets = taskrunner.execute_task(
        program, dataset, 0,
        taskrunner.materialize_input_buckets(source, 0),
    )
    return sum(len(b) for b in buckets)


def test_combiner_ablation(benchmark, bench_corpus_subset):
    root, paths, _ = bench_corpus_subset
    lines = []
    for path in paths[:20]:
        lines.extend(open(path).read().splitlines())
    plain_prog = WordCount(default_options(), [])
    combined_prog = WordCountCombined(default_options(), [])

    without = once(benchmark, map_output_records, plain_prog, lines, None)
    with_combiner = map_output_records(combined_prog, lines, "combine")
    shrinkage = without / max(1, with_combiner)

    print_table(
        "A1.1: combiner ablation (WordCount, one map task over "
        f"{len(lines)} lines)",
        ["configuration", "records shuffled", "relative"],
        [
            ["no combiner", without, "1.0x"],
            ["reduce-as-combiner", with_combiner, f"1/{shrinkage:.1f}x"],
        ],
        notes=[
            "the combiner 'reduces the amount of data that must be sent "
            "over the network for the main sort' (section V-A)",
        ],
    )
    assert with_combiner < without
    assert shrinkage > 2.0  # Zipfian text repeats words heavily


def simulate_affinity(affinity: bool, iterations=30, tasks=8, slaves=4):
    """Iterative schedule; count task->same-slave placements."""
    scheduler = Scheduler(affinity=affinity)
    for slave in range(slaves):
        scheduler.add_slave(slave)
    scheduler.mark_input_complete("input")
    placements = {}
    sticky = 0
    total = 0
    for iteration in range(iterations):
        ds_id = f"iter{iteration}"
        scheduler.add_dataset(
            ScheduledDataset(ds_id, ntasks=tasks, affinity_group="iter",
                             input_id="input")
        )
        # Slaves become free in a scrambled order each iteration, as
        # they would in a real cluster.
        order = [(iteration * 7 + k) % slaves for k in range(slaves)]
        pending = tasks
        while pending:
            for slave in order:
                task = scheduler.next_task(slave)
                if task is None:
                    continue
                _, index = task
                previous = placements.get(index)
                if previous is not None:
                    total += 1
                    if previous == slave:
                        sticky += 1
                placements[index] = slave
                scheduler.task_done(slave, task)
                pending -= 1
    return sticky / total if total else 1.0


def test_affinity_ablation(benchmark):
    with_affinity = once(benchmark, simulate_affinity, True)
    without_affinity = simulate_affinity(False)
    print_table(
        "A1.2: iteration affinity ablation (8 tasks, 4 slaves, 30 "
        "iterations, scrambled slave availability)",
        ["scheduler", "same-slave placement rate"],
        [
            ["affinity on (Mrs default)", f"{with_affinity:.0%}"],
            ["affinity off", f"{without_affinity:.0%}"],
        ],
        notes=[
            "sticky placement 'reduces communication between nodes and "
            "latency between iterations' (section IV-A)",
        ],
    )
    assert with_affinity > 0.9
    assert with_affinity > without_affinity


PSO_BASE = [
    "--mrs-seed", "3", "--pso-function", "rosenbrock", "--pso-dims", "100",
    "--pso-subswarms", "4", "--pso-particles", "5", "--pso-inner", "5",
    "--pso-outer", "12",
]


def timed_cluster_pso(extra_flags):
    started = time.perf_counter()
    program = run_on_cluster(ApiaryPSO, PSO_BASE + extra_flags, n_slaves=2)
    return program, time.perf_counter() - started


def test_reducemap_fusion_ablation(benchmark):
    fused_prog, fused_s = once(benchmark, timed_cluster_pso, [])
    unfused_prog, unfused_s = timed_cluster_pso(["--pso-no-fuse"])
    assert [r.best for r in fused_prog.convergence] == [
        r.best for r in unfused_prog.convergence
    ], "fusion must not change results"

    iterations = len(fused_prog.convergence)
    print_table(
        "A1.3: ReduceMap fusion ablation (PSO, 12 iterations, 2 slaves)",
        ["configuration", "barriers/iter", "total wall", "s/iteration"],
        [
            ["fused reducemap", 1, fmt_seconds(fused_s),
             fmt_seconds(fused_s / iterations)],
            ["separate reduce+map", 2, fmt_seconds(unfused_s),
             fmt_seconds(unfused_s / iterations)],
        ],
        notes=["identical trajectories; fusion halves the per-iteration "
               "barrier count (section IV-A)"],
    )
    # Wall-time on localhost is noisy; the hard guarantees are result
    # equality (asserted above) and barrier count (by construction).


def test_heartbeat_batching_ablation(benchmark):
    classic = HadoopCostModel(tasks_per_heartbeat=1)
    batched = HadoopCostModel()  # default: 4

    def run(model):
        cluster = HadoopCluster(model=model)
        return HadoopJob(cluster).run_modeled(
            map_seconds=0.1, n_map_tasks=126, reduce_seconds=0.1,
            n_reduce_tasks=4,
        ).modeled_seconds

    batched_s = once(benchmark, run, batched)
    classic_s = run(classic)
    print_table(
        "A1.4: JobTracker assignment batching (126 trivial maps, 21 nodes)",
        ["assignment policy", "modeled job time"],
        [
            ["1 task/heartbeat (stock 0.20)", fmt_seconds(classic_s)],
            ["4 tasks/heartbeat (MAPREDUCE-318)", fmt_seconds(batched_s)],
        ],
        notes=["either way the job floor stays ~30s+ — the overhead the "
               "paper's iterative argument rests on"],
    )
    assert classic_s > batched_s
    assert batched_s >= 28.0


def test_apiary_stagnation_ablation(benchmark):
    """A1.5 — the Apiary swarming/reinit mechanic on a multimodal
    landscape (Rastrigin): stagnating hives are reinitialized after
    their best has been shared around the ring."""
    base = [
        "--mrs-seed", "21", "--pso-function", "rastrigin",
        "--pso-dims", "12", "--pso-subswarms", "4",
        "--pso-particles", "8", "--pso-inner", "5", "--pso-outer", "40",
    ]

    def run(stagnation):
        from repro.core.main import run_program

        prog = run_program(
            ApiaryPSO, base + ["--pso-stagnation", str(stagnation)],
            impl="serial",
        )
        return prog

    off = once(benchmark, run, 0)
    on = run(5)
    print_table(
        "A1.5: Apiary stagnation/reinit ablation (Rastrigin-12, 40 rounds)",
        ["configuration", "final best", "evaluations", "hive reinits"],
        [
            ["stagnation off", f"{off.best_value:.4g}",
             off.convergence[-1].evals, off.reinit_count],
            ["stagnation limit 5", f"{on.best_value:.4g}",
             on.convergence[-1].evals, on.reinit_count],
        ],
        notes=["reinit restores diversity on multimodal landscapes; the "
               "hive's best is shared before the reset so knowledge is "
               "kept"],
    )
    assert off.reinit_count == 0
    assert on.reinit_count >= 0  # landscape-dependent; both runs valid
    assert on.best_value <= on.convergence[0].best


def test_fault_tolerance_cost(benchmark):
    """A1.6 — price of a mid-job slave death on the file data plane:
    the job completes with the identical answer, paying only the
    watchdog-detection and re-execution time."""
    from repro.apps.pi.estimator import PiEstimator
    from repro.core.main import run_program
    from repro.runtime.cluster import LocalCluster

    flags = ["--pi-samples", "600000", "--pi-tasks", "9"]
    serial = run_program(PiEstimator, flags, impl="serial")

    def clean_run():
        started = time.perf_counter()
        with LocalCluster(PiEstimator, flags, n_slaves=3) as cluster:
            program = cluster.run()
        return program, time.perf_counter() - started

    program_clean, clean_s = once(benchmark, clean_run)

    started = time.perf_counter()
    cluster = LocalCluster(PiEstimator, flags, n_slaves=3)
    cluster.start()
    try:
        cluster.kill_slave(0)
        program_chaos = cluster.run()
    finally:
        cluster.stop()
    chaos_s = time.perf_counter() - started

    assert program_clean.pi_estimate == serial.pi_estimate
    assert program_chaos.pi_estimate == serial.pi_estimate
    print_table(
        "A1.6: slave death mid-job (file data plane, 3 slaves -> 2)",
        ["scenario", "wall time", "answer"],
        [
            ["no failures", fmt_seconds(clean_s), "correct"],
            ["1 slave killed", fmt_seconds(chaos_s),
             "correct (identical to serial)"],
        ],
        notes=["shared-filesystem intermediate data survives the death "
               "(section IV-B); the surcharge is watchdog detection "
               "(~2 s ping period) plus redoing the lost in-flight task"],
    )


def test_task_granularity_ablation(benchmark):
    """A1.7 — the paper's motivation for Apiary, measured: "For
    computationally trivial objective functions, task granularity can
    be too fine if each map task operates on a single particle."
    Same 20 particles, same total PSO steps, two decompositions."""
    from repro.apps.pso.mrpso_single import SingleParticlePSO
    from repro.core.main import run_program

    def run_fine():
        started = time.perf_counter()
        prog = run_on_cluster(
            SingleParticlePSO,
            ["--mrs-seed", "8", "--sp-function", "sphere", "--sp-dims", "10",
             "--sp-particles", "20", "--sp-iters", "10"],
            n_slaves=2,
        )
        return prog, time.perf_counter() - started

    fine_prog, fine_s = once(benchmark, run_fine)

    started = time.perf_counter()
    coarse_prog = run_on_cluster(
        ApiaryPSO,
        ["--mrs-seed", "8", "--pso-function", "sphere", "--pso-dims", "10",
         "--pso-subswarms", "4", "--pso-particles", "5",
         "--pso-inner", "10", "--pso-outer", "1"],
        n_slaves=2,
    )
    coarse_s = time.perf_counter() - started

    # Same total motion steps: fine = 20 particles x 10 iterations;
    # coarse = 4 hives x 5 particles x 10 inner iterations.
    fine_tasks = 20 * 10
    coarse_tasks = 4 * 1
    print_table(
        "A1.7: task granularity (200 particle-steps, 2 slaves)",
        ["decomposition", "map tasks", "barriers", "wall time"],
        [
            ["per-particle (MRPSO [5])", fine_tasks, 10, fmt_seconds(fine_s)],
            ["Apiary subswarms [12]", coarse_tasks, 1, fmt_seconds(coarse_s)],
        ],
        notes=[
            "identical per-step math; the per-particle formulation pays "
            f"{fine_tasks // coarse_tasks}x the task dispatches and 10x "
            "the barriers for the same arithmetic",
        ],
    )
    assert coarse_s < fine_s, (
        "coarse granularity must beat per-particle tasks on a trivial "
        "objective"
    )
