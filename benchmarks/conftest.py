"""Shared fixtures for the benchmark harness."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.datagen import CorpusSpec, generate_corpus, corpus_file_list


@pytest.fixture(scope="session")
def bench_corpus(tmp_path_factory):
    """The scaled WordCount corpus: 1:100 of the full Gutenberg run
    (312 files vs 31,173), same nested layout and Zipf statistics."""
    root = str(tmp_path_factory.mktemp("corpus") / "gutenberg")
    spec = CorpusSpec(n_files=312, mean_words_per_file=1200, seed=12)
    generate_corpus(root, spec)
    return root, corpus_file_list(root), spec


@pytest.fixture(scope="session")
def bench_corpus_subset(tmp_path_factory):
    """The scaled 'subset' corpus: 1:100 of the 8,316-file subset."""
    root = str(tmp_path_factory.mktemp("subset") / "gutenberg")
    spec = CorpusSpec(n_files=83, mean_words_per_file=1200, seed=12)
    generate_corpus(root, spec)
    return root, corpus_file_list(root), spec
