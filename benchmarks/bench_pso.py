"""E6/E7 — Fig 4: Apiary PSO on Rosenbrock-250, serial vs parallel.

Reproduced observations (section V-B):

* "Performing 100 iterations on 5 particles requires only 0.2 seconds"
  (serial) — measured directly at the paper's own scale.
* parallel PSO ≈ 0.5 s/iteration of which ~0.3 s is per-iteration
  MapReduce overhead — measured on a real 2-slave local cluster
  (local RPC is faster than the paper's gigabit cluster; the shape to
  hold is overhead ≪ 1 s and ≪ Hadoop's floor).
* convergence vs function evaluations and vs wall time (both Fig 4
  panels) for serial and parallel runs of the same seed — identical
  evals-curves, differing time-curves.
* E7: PSO on Hadoop estimate — iterations x per-job overhead; the
  paper computes 2471 x 30 s ≈ 20.6 h.
"""

import time

from repro.apps.pso.mrpso import ApiaryPSO, serial_apiary_pso
from repro.core.main import run_program
from repro.hadoopsim import HadoopJob
from repro.observability import export
from repro.runtime.cluster import LocalCluster
from reporting import fmt_seconds, metrics_startup_seconds, once, print_table

PSO_FLAGS = [
    "--mrs-seed", "42",
    "--pso-function", "rosenbrock",
    "--pso-dims", "250",
    "--pso-subswarms", "4",
    "--pso-particles", "5",
    "--pso-inner", "10",
    "--pso-outer", "20",
]


def serial_100_iterations_5_particles() -> float:
    """The paper's exact micro-measurement."""
    started = time.perf_counter()
    serial_apiary_pso(
        function="rosenbrock", dims=250, n_subswarms=1, particles_per=5,
        inner_iters=100, max_outer=1, seed=7,
    )
    return time.perf_counter() - started


def test_fig4_convergence_and_overhead(benchmark):
    serial_micro = once(benchmark, serial_100_iterations_5_particles)

    serial = run_program(ApiaryPSO, PSO_FLAGS, impl="serial")

    cluster = LocalCluster(ApiaryPSO, PSO_FLAGS, n_slaves=2)
    cluster.start()
    # Startup and per-operation overhead both come from the runtime's
    # own metrics layer rather than ad-hoc stopwatches around it.
    startup_seconds = metrics_startup_seconds(cluster.backend)
    try:
        parallel = cluster.run()
        report = cluster.backend.metrics()
    finally:
        cluster.stop()
    framework_overhead = export.operation_overhead_seconds(report)
    operations = max(1, len(report.get("operations") or ()))

    assert [r.best for r in parallel.convergence] == [
        r.best for r in serial.convergence
    ], "serial and parallel must be bit-identical (section IV-A)"

    iterations = len(parallel.convergence)
    serial_total = serial.convergence[-1].elapsed
    parallel_total = parallel.convergence[-1].elapsed
    serial_per_iter = serial_total / iterations
    parallel_per_iter = parallel_total / iterations
    overhead_per_iter = max(0.0, parallel_per_iter - serial_per_iter)

    rows = []
    step = max(1, iterations // 8)
    for record_s, record_p in list(zip(serial.convergence, parallel.convergence))[::step]:
        rows.append([
            record_s.iteration,
            record_s.evals,
            f"{record_s.best:.4g}",
            fmt_seconds(record_s.elapsed),
            fmt_seconds(record_p.elapsed),
        ])
    print_table(
        "E6 / Fig 4: Rosenbrock-250, Apiary (4 hives x 5 particles, "
        "10 inner iters)",
        ["outer iter", "evals", "best value", "serial time", "parallel time"],
        rows,
        notes=[
            "identical best-vs-evals curves by construction (bit-equal "
            "trajectories); the two time columns are the two Fig 4 panels",
        ],
    )
    print_table(
        "E6: iteration cost",
        ["quantity", "this repro", "paper"],
        [
            ["100 serial iters x 5 particles", fmt_seconds(serial_micro),
             "0.2 s"],
            ["cluster startup", fmt_seconds(startup_seconds), "~2 s"],
            ["serial s/outer-iteration", fmt_seconds(serial_per_iter), ""],
            ["parallel s/outer-iteration", fmt_seconds(parallel_per_iter),
             "~0.5 s"],
            ["per-iteration MapReduce overhead", fmt_seconds(overhead_per_iter),
             "~0.3 s (gigabit cluster; local RPC is cheaper)"],
            ["per-operation overhead (metrics layer)",
             fmt_seconds(framework_overhead / operations),
             "wall minus compute, from the job's own report"],
        ],
    )

    # Paper-scale shape checks.
    assert serial_micro < 2.0, "100x5 serial iterations should be sub-second-ish"
    assert startup_seconds < 5.0
    assert parallel_per_iter < 1.0, "per-iteration cost must be ~sub-second"
    # Convergence is real: the best value strictly improves.  (At the
    # paper's full 2471 iterations Rosenbrock-250 drops to 1e-5; 20
    # outer iterations only shave the first chunk off.)
    assert serial.convergence[-1].best < serial.convergence[0].best


def test_hadoop_estimate(benchmark):
    """E7: the paper's 20-hour estimate for PSO on Hadoop."""
    per_job = once(benchmark, HadoopJob().per_job_overhead)
    # Measure iterations-to-target at a scaled setting.
    prog = serial_apiary_pso(
        function="rosenbrock", dims=50, n_subswarms=4, particles_per=5,
        inner_iters=10, max_outer=100, target=1e4, seed=42,
    )
    measured_iters = len(prog.convergence)
    mrs_time = prog.convergence[-1].elapsed
    hadoop_estimate = measured_iters * per_job
    paper_estimate_hours = 2471 * 30 / 3600

    print_table(
        "E7: estimated PSO-on-Hadoop cost (iterations x per-job overhead)",
        ["quantity", "this repro", "paper"],
        [
            ["per-MapReduce-job overhead", fmt_seconds(per_job), ">= 30 s"],
            ["iterations to target (scaled run)", measured_iters,
             "2471 (Rosenbrock-250 to 1e-5)"],
            ["Mrs wall time (measured)", fmt_seconds(mrs_time), ""],
            ["Hadoop wall time (estimated)", fmt_seconds(hadoop_estimate),
             f"{paper_estimate_hours:.1f} h"],
            ["slowdown factor", f"{hadoop_estimate / max(mrs_time, 1e-9):,.0f}x",
             "'two orders of magnitude' per op; ~20 h vs minutes overall"],
        ],
        notes=[
            "paper-scale arithmetic with our calibrated overhead: "
            f"2471 x {per_job:.0f} s = {2471 * per_job / 3600:.1f} h",
        ],
    )
    assert 28.0 <= per_job <= 36.0
    assert hadoop_estimate > 100 * mrs_time
    assert 18.0 <= 2471 * per_job / 3600 <= 25.0  # the ~20 h headline


def test_related_work_overhead_ladder(benchmark):
    """Extension of E7: place Mrs's measured per-iteration overhead on
    the same axis as the section-II related work (HaLoop, Twister)."""
    from repro.hadoopsim.iterative_rivals import overhead_ladder

    ladder = once(benchmark, overhead_ladder)

    # Measure Mrs's per-iteration overhead on a real 2-slave cluster
    # with near-zero compute per iteration.
    flags = [
        "--mrs-seed", "5", "--pso-function", "sphere", "--pso-dims", "4",
        "--pso-subswarms", "2", "--pso-particles", "3",
        "--pso-inner", "1", "--pso-outer", "15",
    ]
    cluster = LocalCluster(ApiaryPSO, flags, n_slaves=2)
    cluster.start()
    try:
        parallel = cluster.run()
    finally:
        cluster.stop()
    iterations = len(parallel.convergence)
    mrs_per_iter = parallel.convergence[-1].elapsed / iterations

    rows = [
        [name, fmt_seconds(seconds), "modeled (section II designs)"]
        for name, seconds in ladder
    ]
    rows.append(
        ["Mrs (measured, 2 local slaves)", fmt_seconds(mrs_per_iter),
         "paper: ~0.3 s on a gigabit cluster"]
    )
    print_table(
        "E7 extension: per-iteration overhead across iterative designs",
        ["system", "overhead/iteration", "provenance"],
        rows,
        notes=[
            "ordering reproduced: Hadoop >> HaLoop > Twister ~ Mrs; "
            "Mrs achieves Twister-class iteration latency while keeping "
            "file-plane fault tolerance (section II/IV-B)",
        ],
    )
    hadoop_s = ladder[0][1]
    haloop_s = ladder[1][1]
    assert hadoop_s > haloop_s > mrs_per_iter
    assert mrs_per_iter < 1.0
