"""E5 — Fig 3b: pi estimation with the compiled inner loop.

The paper swaps the pure-Python Halton loop for a C function via
ctypes and finds "the C function is much faster than the corresponding
Java function, so Mrs is much faster than Hadoop" — at *every* sample
count.  Where a C compiler exists we use the paper's *actual*
mechanism (``_halton.c`` compiled on demand, called through ctypes,
bit-identical to the Python kernel); otherwise the vectorized NumPy
kernel stands in (DESIGN.md substitutions).  Either way, the claim to
reproduce is that the Mrs series stays below the Hadoop series
throughout — no crossover.
"""

from repro.apps.pi import halton_ctypes
from repro.apps.pi.halton import measure_python_rate
from repro.apps.pi.halton_numpy import measure_numpy_rate
from bench_pi_python import (
    SWEEP,
    bisect_crossover,
    hadoop_modeled_seconds,
    make_cluster,
    mrs_modeled_seconds,
)
from reporting import fmt_count, fmt_seconds, once, print_table


def test_fig3b_c_kernel_series(benchmark):
    if halton_ctypes.is_available():
        kernel_name = "ctypes C (the paper's mechanism)"
        numpy_rate = once(
            benchmark, halton_ctypes.measure_ctypes_rate, 4_000_000
        )
    else:
        kernel_name = "NumPy (no C compiler; substitution)"
        numpy_rate = once(benchmark, measure_numpy_rate, 3_000_000)
    python_rate = measure_python_rate(300_000)
    cluster = make_cluster()
    java_rate = python_rate * cluster.model.java_speedup_vs_python

    mrs_c_series = [mrs_modeled_seconds(n, numpy_rate) for n in SWEEP]
    hadoop_series = [
        hadoop_modeled_seconds(n, python_rate, cluster) for n in SWEEP
    ]

    rows = [
        [fmt_count(n), fmt_seconds(mrs_s), fmt_seconds(hadoop_s)]
        for n, mrs_s, hadoop_s in zip(SWEEP, mrs_c_series, hadoop_series)
    ]
    crossover = bisect_crossover(
        lambda n: mrs_modeled_seconds(n, numpy_rate),
        lambda n: hadoop_modeled_seconds(n, python_rate, cluster),
    )
    print_table(
        "E5 / Fig 3b: pi run time vs samples, compiled inner loop",
        ["samples", "Mrs + compiled kernel", "Hadoop (modeled)"],
        rows,
        notes=[
            f"compiled kernel: {kernel_name}",
            f"measured compiled-kernel rate: {numpy_rate:,.0f} samples/s/core "
            f"vs modeled Java {java_rate:,.0f}",
            "paper shape: with the C inner loop Mrs wins at every sample "
            f"count; crossover here: {crossover!r}",
        ],
    )

    # The compiled kernel must beat the modeled Java rate (the paper's
    # observed ordering), hence no crossover anywhere in the sweep.
    assert numpy_rate > java_rate
    assert crossover is None
    # Left side unchanged: overhead-dominated, Mrs >= 10x faster.
    assert hadoop_series[0] / mrs_c_series[0] >= 10.0
