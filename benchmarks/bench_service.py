"""Service mode vs per-process jobs: throughput and latency.

The per-process baseline pays the classic cost for every job: spawn a
master, spawn slaves, wait for sign-in, run, tear down.  The warm
:class:`~repro.service.server.JobServer` pays it once, then multiplexes
jobs over the shared pool.  This bench measures per-job latency (p50 /
p99) and jobs/minute at 1, 8, and 32 concurrent submitters against the
warm server, next to the per-process baseline — and verifies every
warm job's output byte-identical to a serial run.

Results land in ``BENCH_service.json`` (see ``--out``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

import argparse
import os
import shutil
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, _SRC)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
# Slave subprocesses must also find the package.
os.environ["PYTHONPATH"] = os.pathsep.join(
    p for p in [_SRC, os.environ.get("PYTHONPATH")] if p
)

from repro.apps.wordcount import WordCountCombined
from repro.core import options as options_mod
from repro.core.main import run_program
from repro.runtime.cluster import run_on_cluster
from repro.service import submit as submit_mod
from repro.service.registry import ProgramRegistry
from repro.service.server import JobServer
from reporting import fmt_count, fmt_seconds, print_table, write_json_table

N_SLAVES = 2


def make_input(workdir: str, lines: int) -> str:
    path = os.path.join(workdir, "input.txt")
    with open(path, "w") as f:
        for i in range(lines):
            f.write(f"alpha beta gamma delta word{i % 97} epsilon\n")
    return path


def output_lines(outdir: str) -> List[bytes]:
    collected = []
    for name in sorted(os.listdir(outdir)):
        if name.startswith("."):
            continue
        with open(os.path.join(outdir, name), "rb") as f:
            collected += f.read().splitlines()
    return sorted(collected)


def percentile(values: List[float], fraction: float) -> float:
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(round(fraction * (len(ranked) - 1))))
    return ranked[index]


def bench_per_process(
    infile: str, workdir: str, repeats: int
) -> List[float]:
    """Cold master + slaves per job: the pre-service cost of one job."""
    latencies = []
    for i in range(repeats):
        outdir = os.path.join(workdir, f"baseline_{i}")
        started = time.perf_counter()
        run_on_cluster(
            WordCountCombined,
            [infile, outdir],
            n_slaves=N_SLAVES,
            tmpdir=os.path.join(workdir, f"baseline_tmp_{i}"),
        )
        latencies.append(time.perf_counter() - started)
    return latencies


def bench_warm_level(
    server: JobServer,
    infile: str,
    workdir: str,
    n_submitters: int,
    jobs_each: int,
    expected: List[bytes],
) -> Dict[str, float]:
    """``n_submitters`` threads each submit ``jobs_each`` jobs to the
    warm server and wait for completion; every output is verified."""
    url = server.control_url
    latencies: List[float] = []
    problems: List[str] = []
    lock = threading.Lock()

    def submit_and_wait(tag: str) -> None:
        outdir = os.path.join(workdir, f"warm_{tag}")
        started = time.perf_counter()
        view = submit_mod._request(
            "POST",
            f"{url}/jobs",
            payload={"program": "wordcount", "args": [infile, outdir]},
        )
        job_id = view["id"]
        while True:
            view = submit_mod._request("GET", f"{url}/jobs/{job_id}")
            if view["state"] in ("done", "failed", "canceled"):
                break
            time.sleep(0.05)
        elapsed = time.perf_counter() - started
        with lock:
            latencies.append(elapsed)
            if view["state"] != "done":
                problems.append(f"{job_id}: {view['state']} {view['error']}")
            elif output_lines(outdir) != expected:
                problems.append(f"{job_id}: output diverged from serial run")

    def submitter(index: int) -> None:
        for j in range(jobs_each):
            submit_and_wait(f"{n_submitters}x_{index}_{j}")

    threads = [
        threading.Thread(target=submitter, args=(i,))
        for i in range(n_submitters)
    ]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    if problems:
        raise RuntimeError("warm jobs misbehaved: " + "; ".join(problems))
    return {
        "jobs": len(latencies),
        "wall": wall,
        "jobs_per_minute": 60.0 * len(latencies) / wall,
        "p50": percentile(latencies, 0.50),
        "p99": percentile(latencies, 0.99),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lines", type=int, default=2000)
    parser.add_argument("--baseline-repeats", type=int, default=3)
    parser.add_argument(
        "--levels", type=int, nargs="+", default=[1, 8, 32],
        help="concurrent-submitter counts to measure",
    )
    parser.add_argument(
        "--jobs-per-level", type=int, default=32,
        help="total jobs at each concurrency level (>= the level)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: verifies plumbing and byte-identity, "
        "not a meaningful timing",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_service.json"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.lines = 120
        args.baseline_repeats = 1
        args.levels = [1, 4]
        args.jobs_per_level = 4

    workdir = tempfile.mkdtemp(prefix="bench_service_")
    try:
        infile = make_input(workdir, args.lines)

        serial_out = os.path.join(workdir, "serial_out")
        run_program(WordCountCombined, [infile, serial_out], impl="serial")
        expected = output_lines(serial_out)
        assert expected, "serial reference run produced no output"

        baseline = bench_per_process(
            infile, workdir, repeats=args.baseline_repeats
        )
        baseline_p50 = percentile(baseline, 0.50)

        opts, _ = options_mod.parse_options(
            None,
            ["--mrs", "serve", "--mrs-tmpdir", os.path.join(workdir, "run")],
        )
        registry = ProgramRegistry()
        registry.register("wordcount", WordCountCombined)
        server = JobServer(registry, opts)
        levels = {}
        try:
            assert server.spawn_slaves(N_SLAVES) >= N_SLAVES
            for n_submitters in args.levels:
                jobs_each = max(1, args.jobs_per_level // n_submitters)
                levels[n_submitters] = bench_warm_level(
                    server,
                    infile,
                    workdir,
                    n_submitters,
                    jobs_each,
                    expected,
                )
        finally:
            server.shutdown(drain=True)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    headers = [
        "mode", "submitters", "jobs", "jobs_per_minute", "p50_s", "p99_s",
    ]
    rows = [
        [
            "per-process",
            1,
            len(baseline),
            round(60.0 / baseline_p50, 2),
            round(baseline_p50, 4),
            round(percentile(baseline, 0.99), 4),
        ]
    ]
    for n_submitters in args.levels:
        result = levels[n_submitters]
        rows.append(
            [
                "warm server",
                n_submitters,
                result["jobs"],
                round(result["jobs_per_minute"], 2),
                round(result["p50"], 4),
                round(result["p99"], 4),
            ]
        )
    warm1 = levels[args.levels[0]]
    notes = [
        f"workload: wordcount over {args.lines} lines, {N_SLAVES} slaves; "
        "per-process = cold master+slaves per job, warm = one shared "
        "JobServer pool",
        "every warm job's output verified byte-identical to a serial run",
        f"warm 1-submitter p50 {warm1['p50']:.3f}s vs per-process p50 "
        f"{baseline_p50:.3f}s "
        f"({baseline_p50 / max(warm1['p50'], 1e-9):.1f}x faster warm)",
    ]
    if args.smoke:
        notes.append("smoke run: workload too small for a meaningful timing")
    title = "Service mode: warm job server vs per-process jobs"
    print_table(
        title,
        headers,
        [
            [r[0], r[1], fmt_count(r[2]), fmt_count(r[3]),
             fmt_seconds(r[4]), fmt_seconds(r[5])]
            for r in rows
        ],
        notes,
    )
    write_json_table(os.path.abspath(args.out), title, headers, rows, notes)
    print(f"wrote {os.path.abspath(args.out)}")

    if warm1["p50"] >= baseline_p50:
        print(
            "WARNING: warm p50 did not beat the per-process baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
