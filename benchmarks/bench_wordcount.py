"""E3 — WordCount on the (synthetic) Gutenberg corpus (section V-B).

Paper observations being reproduced, at 1:100 scale with modeled
extrapolation to paper scale:

* full corpus (31,173 nested files): Hadoop needs ~9 minutes of
  startup *alone*; Mrs finishes the entire job in under 9 minutes.
* 8,316-file subset: Hadoop 1 min prep / 16 min total; Mrs 2 min total.

The scaled runs execute the real WordCount code through Mrs (measured)
and through the Hadoop simulator (real code on a virtual clock); the
paper-scale rows use the calibrated enumeration cost model directly.
"""

import time

from repro.apps.wordcount import WordCountCombined, output_counts
from repro.core.main import run_program
from repro.core.options import default_options
from repro.datagen.corpus import count_dirs
from repro.hadoopsim import HadoopCluster, HadoopJob
from repro.hadoopsim.costmodel import HadoopCostModel
from repro.runtime.cluster import run_on_cluster
from reporting import fmt_seconds, once, print_table


def run_mrs_serial(root, outdir):
    started = time.perf_counter()
    program = run_program(WordCountCombined, [root, outdir], impl="serial")
    return program, time.perf_counter() - started


def run_mrs_cluster(root, outdir, n_slaves=2):
    started = time.perf_counter()
    program = run_on_cluster(
        WordCountCombined, [root, outdir], n_slaves=n_slaves
    )
    return program, time.perf_counter() - started


def run_hadoop_sim(paths):
    program = WordCountCombined(default_options(), [])
    job = HadoopJob(HadoopCluster())
    return job.run_program(
        program, paths, n_reduce_tasks=4, combiner=program.combine
    )


def test_wordcount_full_corpus(benchmark, bench_corpus, tmp_path):
    root, paths, spec = bench_corpus
    program, mrs_serial_s = once(
        benchmark, run_mrs_serial, root, str(tmp_path / "serial")
    )
    _, mrs_cluster_s = run_mrs_cluster(root, str(tmp_path / "cluster"))
    hadoop = run_hadoop_sim(paths)
    assert dict(hadoop.pairs) == output_counts(program)

    model = HadoopCostModel()
    paper_scale_startup = model.listing_seconds(31_173, 31_173)
    # Extrapolate Mrs to paper scale: tokens scale 100x, cluster scale
    # 126 cores / 2 slaves = 63x -> net ~1.6x our 2-slave time, plus
    # unchanged startup.  Reported as an estimate, not a measurement.
    mrs_paper_estimate = mrs_cluster_s * 100 * (2 / 126)

    print_table(
        "E3a: WordCount, full corpus (scaled 1:100 -> 312 nested files)",
        ["system", "quantity", "this repro", "paper (31,173 files)"],
        [
            ["Mrs", "serial total (measured)", fmt_seconds(mrs_serial_s), ""],
            ["Mrs", "2-slave total (measured)", fmt_seconds(mrs_cluster_s), ""],
            ["Mrs", "extrapolated total @ paper scale, 126 cores",
             fmt_seconds(mrs_paper_estimate), "< 9 min (whole job)"],
            ["Hadoop", "startup, scaled corpus (modeled)",
             fmt_seconds(hadoop.startup_seconds), ""],
            ["Hadoop", "total, scaled corpus (modeled)",
             fmt_seconds(hadoop.modeled_seconds), ""],
            ["Hadoop", "startup @ paper scale (modeled)",
             fmt_seconds(paper_scale_startup), "~9 min (startup alone)"],
        ],
        notes=[
            f"corpus layout: {count_dirs(root)} directories for "
            f"{len(paths)} files (one per ebook, as in Gutenberg)",
            "shape check: Hadoop's paper-scale *startup* exceeds Mrs's "
            "extrapolated *total*",
        ],
    )
    # The paper's headline shape:
    assert 8 * 60 <= paper_scale_startup <= 11 * 60
    assert mrs_paper_estimate < paper_scale_startup
    assert hadoop.modeled_seconds > mrs_serial_s


def test_wordcount_subset(benchmark, bench_corpus_subset, tmp_path):
    root, paths, spec = bench_corpus_subset
    program, mrs_serial_s = once(
        benchmark, run_mrs_serial, root, str(tmp_path / "serial")
    )
    hadoop = run_hadoop_sim(paths)
    assert dict(hadoop.pairs) == output_counts(program)

    model = HadoopCostModel()
    paper_prep = model.listing_seconds(8_316, 8_316)
    # Hadoop total at paper scale: prep + modeled job at 100x tokens on
    # 126 map slots (compute per task unchanged: same per-file size).
    hadoop_paper_total = paper_prep + hadoop.modeled_seconds

    print_table(
        "E3b: WordCount, subset (scaled 1:100 -> 83 files)",
        ["system", "quantity", "this repro", "paper (8,316 files)"],
        [
            ["Mrs", "serial total (measured)", fmt_seconds(mrs_serial_s),
             "2 min total"],
            ["Hadoop", "prep @ paper scale (modeled)",
             fmt_seconds(paper_prep), "~1 min prep"],
            ["Hadoop", "total @ paper scale (modeled, lower bound)",
             fmt_seconds(hadoop_paper_total), "16 min total"],
        ],
        notes=[
            "paper shape: Hadoop total ≈ 8x Mrs total on the subset; "
            "prep alone is comparable to Mrs's whole job",
        ],
    )
    assert 40 <= paper_prep <= 120
    # Shape: Hadoop pays at least an order of magnitude more overhead
    # than the Mrs measured job on the same (scaled) input.
    assert hadoop.modeled_seconds >= 10 * mrs_serial_s or (
        hadoop.modeled_seconds >= 30.0
    )
