"""Shuffle transfer-plane microbenchmark: seed fetch path vs pooled
prefetch vs compressed.

A reduce task's remote-input fetch is exercised end to end against a
live :class:`~repro.comm.dataserver.DataServer` whose ``latency_seconds``
knob emulates cross-node RTT on loopback: N key-sorted ``.mrsb`` map
spills are served over HTTP, merged, grouped, summed, and written to a
reduce output file.

Three fetch paths run over the same buckets:

* ``seed`` — a frozen copy of the pre-optimization path: one
  ``urllib.request`` connection per bucket, sequential, whole payload
  materialized, every key *re-encoded* for the merge, then
  materialize-and-sort.
* ``pooled`` — the live transfer plane: keep-alive pooled connections,
  parallel prefetch threads bounded by a byte budget, records streamed
  straight off the socket with canonical key bytes sliced from the wire.
* ``compressed`` — the pooled path with gzip negotiated (chunked
  streaming responses, decompressed on the fly).

The run verifies the reduce output file is byte-identical across all
three paths, then reports wall seconds, records/second, speedup over
the seed path, and the transfer plane's own counters (wire bytes,
connection reuse, prefetch stall).  The stall fraction is gated against
the ``fetch_stall_fraction`` budget in ``overhead_budget.json``.
Results land in ``BENCH_transfer.json`` (see ``--out``).

Usage::

    PYTHONPATH=src python benchmarks/bench_transfer.py [--smoke]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import shutil
import sys
import tempfile
import time
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.comm import transfer
from repro.comm.dataserver import DataServer
from repro.io import formats
from repro.io.bucket import (
    Bucket,
    FileBucket,
    group_sorted_records,
    merge_sorted_records,
)
from repro.io.serializers import get_serializer
from reporting import fmt_count, fmt_seconds, print_table, write_json_table

KeyValue = Tuple[Any, Any]

KEY_SERIALIZER = "str"
VALUE_SERIALIZER = "int"


# ----------------------------------------------------------------------
# Seed fetch path — a frozen copy of the pre-optimization HTTP fetch.
# Deliberately duplicated here (not imported) so the baseline stays
# fixed as the live code evolves.
# ----------------------------------------------------------------------


def _seed_fetch_http(url: str) -> List[KeyValue]:
    """Verbatim pre-PR ``_fetch_http``: one fresh connection, the whole
    body materialized, then decoded from an in-memory buffer."""
    reader_cls = formats.reader_for(url)
    last_error: Optional[Exception] = None
    for attempt in range(3):
        if attempt:
            time.sleep(0.2 * attempt)
        try:
            with urllib.request.urlopen(url, timeout=30.0) as response:
                payload = response.read()
            reader = reader_cls(
                io.BytesIO(payload),
                key_serializer=get_serializer(KEY_SERIALIZER),
                value_serializer=get_serializer(VALUE_SERIALIZER),
            )
            return list(reader)
        except Exception as exc:
            last_error = exc
    raise RuntimeError(f"failed to fetch {url}: {last_error}")


def _seed_key_to_bytes(key: str) -> bytes:
    # The pre-PR reduce merge re-encoded every fetched key.
    return b"s:" + key.encode("utf-8")


def seed_reduce(urls: List[str], out_path: str) -> str:
    """Sequential whole-payload fetches, re-encode, sort, merge, reduce."""
    streams = []
    for url in urls:
        records = [
            (_seed_key_to_bytes(key), (key, value))
            for key, value in _seed_fetch_http(url)
        ]
        records.sort(key=lambda record: record[0])
        streams.append(iter(records))
    return _write_reduce_output(merge_sorted_records(streams), out_path)


# ----------------------------------------------------------------------
# Live transfer plane
# ----------------------------------------------------------------------


def plane_reduce(urls: List[str], out_path: str, compression: str) -> str:
    """The live path: pooled connections + parallel prefetch + streaming."""
    opts_like = type(
        "Opts",
        (),
        {
            "fetch_threads": 4,
            "fetch_buffer_mb": 32,
            "fetch_compression": compression,
        },
    )()
    transfer.configure(opts_like)
    buckets = []
    for source, url in enumerate(urls):
        bucket = Bucket(source=source, split=0, url=url)
        bucket.key_serializer = KEY_SERIALIZER
        bucket.value_serializer = VALUE_SERIALIZER
        bucket.url_sorted = True
        buckets.append(bucket)
    streams, prefetcher = transfer.bucket_record_streams(buckets)
    try:
        return _write_reduce_output(merge_sorted_records(streams), out_path)
    finally:
        if prefetcher is not None:
            prefetcher.close()


def _write_reduce_output(merged, out_path: str) -> str:
    out = FileBucket(
        out_path,
        split=0,
        key_serializer=KEY_SERIALIZER,
        value_serializer=VALUE_SERIALIZER,
        retain=False,
    )
    for keybytes, key, values in group_sorted_records(merged):
        out.addpair((key, sum(values)), keybytes)
    out.close_writer()
    return out_path


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def make_buckets(
    tmpdir: str, n_buckets: int, rows: int
) -> List[str]:
    """Write N key-sorted map-spill files sharing one key space, so the
    reduce merge genuinely interleaves streams."""
    paths = []
    for b in range(n_buckets):
        path = os.path.join(tmpdir, f"spill_{b}.mrsb")
        bucket = FileBucket(
            path,
            source=b,
            split=0,
            key_serializer=KEY_SERIALIZER,
            value_serializer=VALUE_SERIALIZER,
            retain=False,
        )
        for i in range(rows):
            bucket.addpair((f"w{i * n_buckets + b:08d}", 1))
        bucket.open_writer()
        bucket.close_writer()
        if not bucket.url_sorted:
            raise SystemExit(f"spill {path} unexpectedly unsorted")
        paths.append(path)
    return paths


def load_stall_budget() -> float:
    path = os.path.join(os.path.dirname(__file__), "overhead_budget.json")
    with open(path, "r", encoding="utf-8") as f:
        return float(json.load(f)["budgets"]["fetch_stall_fraction"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--buckets", type=int, default=12)
    parser.add_argument("--rows", type=int, default=6000)
    parser.add_argument(
        "--latency-ms",
        type=float,
        default=15.0,
        help="emulated per-request RTT on the data server",
    )
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: verifies output identity and report "
        "plumbing, not a meaningful timing",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_transfer.json"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.buckets, args.rows, args.repeat = 4, 400, 1
        args.latency_ms = 5.0

    tmpdir = tempfile.mkdtemp(prefix="bench_transfer_")
    outdir = tempfile.mkdtemp(prefix="bench_transfer_out_")
    n_records = args.buckets * args.rows
    stall_budget = load_stall_budget()
    try:
        paths = make_buckets(tmpdir, args.buckets, args.rows)
        with DataServer(
            tmpdir, latency_seconds=args.latency_ms / 1000.0
        ) as server:
            urls = [server.url_for(path) for path in paths]
            modes: List[Tuple[str, Callable[[str], str]]] = [
                ("seed", lambda out: seed_reduce(urls, out)),
                ("pooled", lambda out: plane_reduce(urls, out, "off")),
                ("compressed", lambda out: plane_reduce(urls, out, "gzip")),
            ]
            # Verification pass: the reduce output must be byte-identical
            # whichever fetch path produced it.
            digests = {}
            for name, fn in modes:
                out_path = fn(os.path.join(outdir, f"verify_{name}.mrsb"))
                with open(out_path, "rb") as f:
                    digests[name] = f.read()
            if len({digest for digest in digests.values()}) != 1:
                raise SystemExit(
                    "OUTPUT MISMATCH: reduce outputs differ across "
                    f"fetch modes {sorted(digests)}"
                )

            # Timing: interleaved best-of-N so load drift hits every
            # mode equally; transfer counters snapshot around the
            # pooled mode's best round.
            best = {name: float("inf") for name, _ in modes}
            counters: Dict[str, float] = {}
            for round_index in range(args.repeat):
                for name, fn in modes:
                    before = transfer.STATS.totals()
                    started = time.perf_counter()
                    fn(os.path.join(outdir, f"run_{name}.mrsb"))
                    elapsed = time.perf_counter() - started
                    if name == "pooled" and elapsed < best[name]:
                        counters = transfer.STATS.delta(before)
                    best[name] = min(best[name], elapsed)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
        shutil.rmtree(outdir, ignore_errors=True)

    speedup = best["seed"] / best["pooled"]
    stall_fraction = counters.get("fetch.stall.seconds", 0.0) / best["pooled"]
    headers = ["fetch path", "records", "seconds", "records_per_s", "speedup"]
    rows = [
        [
            name,
            n_records,
            round(best[name], 4),
            round(n_records / best[name]),
            round(best["seed"] / best[name], 2),
        ]
        for name, _ in modes
    ]
    notes = [
        f"workload: {args.buckets} remote buckets x {args.rows} records, "
        f"{args.latency_ms:g} ms emulated RTT, best of {args.repeat}",
        "reduce output verified byte-identical across all three paths",
        "pooled-path counters (best round): "
        + ", ".join(
            f"{name}={value:g}" for name, value in sorted(counters.items())
        ),
        f"prefetch stall fraction {stall_fraction:.3f} "
        f"(budget {stall_budget:g})",
    ]
    if args.smoke:
        notes.append("smoke run: workload too small for a meaningful timing")
    print_table(
        "Shuffle transfer plane: seed vs pooled vs compressed",
        headers,
        [
            [r[0], fmt_count(r[1]), fmt_seconds(r[2]), fmt_count(r[3]), r[4]]
            for r in rows
        ],
        notes,
    )
    write_json_table(
        os.path.abspath(args.out),
        "Shuffle transfer plane: seed vs pooled vs compressed",
        headers,
        rows,
        notes,
    )
    print(f"wrote {os.path.abspath(args.out)}")
    if stall_fraction > stall_budget:
        print(
            f"FAIL: prefetch stall fraction {stall_fraction:.3f} exceeds "
            f"budget {stall_budget:g}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
