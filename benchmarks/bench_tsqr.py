"""Tall-and-skinny QR bench: zero-copy NumPy data plane vs pickle.

Direct TSQR over the multiprocess backend (real spill files, real
worker fetches) at several aspect ratios, each run twice:

* ``zero-copy`` — matrix blocks ride the ``numpy`` serializer with
  ``--mrs-zero-copy on``: scatter writes, mmap-backed reads, views all
  the way to the merge.
* ``pickle`` — the same job with pickled values and the knob off.

Both paths must produce *numerically identical* factors (the dataflow
is deterministic), which the bench asserts before reporting.  A serial
``numpy.linalg.qr`` of the full matrix anchors the rows/s scale.

    python benchmarks/bench_tsqr.py [--smoke] [--out BENCH_tsqr.json]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from reporting import print_table, write_json_table

from repro import run_program
from repro.apps.tsqr.numerics import orthogonality_error, reconstruction_error
from repro.apps.tsqr.programs import DirectTSQR


class BenchDirectTSQR(DirectTSQR):
    """Direct TSQR without the verification pass in ``run`` — the
    bench verifies once, outside the timed region."""

    def run(self, job):
        self.Q, self.R = self.factor(job)
        return 0


#: (rows, cols) aspect ratios; blocks/procs chosen per run below.
FULL_SHAPES = [(400_000, 16), (200_000, 32), (100_000, 64)]
SMOKE_SHAPES = [(20_000, 8)]


def _run_path(rows, cols, blocks, procs, zero_copy):
    """One timed Direct TSQR job; returns (seconds, Q, R)."""
    serializer = "numpy" if zero_copy else "pickle"
    knob = "on" if zero_copy else "off"
    args = [
        "--mrs-procs", str(procs),
        "--mrs-zero-copy", knob,
        "--tsqr-serializer", serializer,
        "--tsqr-rows", str(rows),
        "--tsqr-cols", str(cols),
        "--tsqr-blocks", str(blocks),
    ]
    start = time.perf_counter()
    program = run_program(BenchDirectTSQR, args, impl="multiprocess")
    elapsed = time.perf_counter() - start
    return elapsed, program.Q, program.R


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small single shape for CI")
    parser.add_argument("--out", default="BENCH_tsqr.json")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--blocks", type=int, default=8)
    opts = parser.parse_args()

    shapes = SMOKE_SHAPES if opts.smoke else FULL_SHAPES
    headers = [
        "shape", "numpy qr rows/s", "pickle rows/s", "zero-copy rows/s",
        "speedup vs pickle", "orthogonality", "reconstruction", "identical",
    ]
    rows_out = []
    notes = [
        f"Direct TSQR, multiprocess backend, {opts.procs} workers, "
        f"{opts.blocks} row blocks; speedup = pickle time / zero-copy time",
        "identical = zero-copy and pickle paths produced bit-equal Q and R",
    ]

    for rows, cols in shapes:
        t_pickle, q_p, r_p = _run_path(
            rows, cols, opts.blocks, opts.procs, zero_copy=False
        )
        t_zc, q_z, r_z = _run_path(
            rows, cols, opts.blocks, opts.procs, zero_copy=True
        )
        identical = bool(np.array_equal(q_p, q_z) and np.array_equal(r_p, r_z))
        assert identical, (
            f"zero-copy and pickle paths diverged at {rows}x{cols}"
        )
        A = np.vstack(
            [  # same deterministic blocks the job generated
                _reference_block(rows, cols, opts.blocks, i)
                for i in range(opts.blocks)
            ]
        )
        t0 = time.perf_counter()
        np.linalg.qr(A)
        t_numpy = time.perf_counter() - t0
        orth = orthogonality_error(q_z)
        recon = reconstruction_error(A, q_z, r_z)
        assert orth < 1e-8 and recon < 1e-8, (rows, cols, orth, recon)
        rows_out.append([
            f"{rows}x{cols}",
            f"{rows / t_numpy:,.0f}",
            f"{rows / t_pickle:,.0f}",
            f"{rows / t_zc:,.0f}",
            f"{t_pickle / t_zc:.2f}x",
            f"{orth:.2e}",
            f"{recon:.2e}",
            "yes" if identical else "NO",
        ])

    title = "Direct TSQR: zero-copy data plane vs pickle (rows/s)"
    print_table(title, headers, rows_out, notes)
    write_json_table(opts.out, title, headers, rows_out, notes)
    print(f"\nwrote {opts.out}")


def _reference_block(rows, cols, blocks, i):
    """Regenerate block i exactly as the job's seeded stream does."""
    from repro.core import random_streams

    base, extra = divmod(rows, blocks)
    n_rows = base + (1 if i < extra else 0)
    rng = random_streams.numpy_stream(0, 101, i)
    return rng.standard_normal((n_rows, cols))


if __name__ == "__main__":
    main()
