"""Overhead budget gate: startup + per-operation overhead vs budget.

The paper's evaluation is an overhead argument — ~2 s startup and
~0.3 s of framework overhead per MapReduce operation, against >=30 s
per Hadoop operation.  This bench keeps those claims true as the
runtime grows: it runs a real WordCount job, reads the same metrics
report ``--mrs-metrics-json`` would emit, derives

* ``startup_seconds`` — backend construction to ready-to-run,
* ``overhead_seconds_per_operation`` — max over operations of
  (wall - compute), the report's per-dataset overhead rows,
* ``event_overhead_fraction`` — relative wall-clock cost of running
  the same job with the structured event log + JSONL sink enabled
  (best-of-N interleaved with the uninstrumented run, so machine
  drift hits both sides equally),
* ``telemetry_overhead_fraction`` — relative wall-clock cost of the
  cluster telemetry plane (``--mrs-telemetry on`` vs ``off``, same
  interleaved best-of-N discipline),

writes ``BENCH_overhead.json``, and exits 1 when any measurement
exceeds the checked-in budget (``benchmarks/overhead_budget.json``).
CI runs ``--smoke``; the budget is deliberately generous — it is a
regression tripwire for order-of-magnitude slips (an accidental
per-task sleep, an O(tasks^2) scheduler pass, a hot-path event emit),
not a microbenchmark.

Usage::

    PYTHONPATH=src python benchmarks/bench_overhead.py [--smoke]
        [--budget PATH] [--no-gate]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.apps.wordcount import WordCountCombined
from repro.core.main import run_program
from repro.observability import export
from reporting import fmt_seconds, print_table, write_json_table

DEFAULT_BUDGET = os.path.join(os.path.dirname(__file__), "overhead_budget.json")

#: Lines of synthetic corpus per map file.
_WORDS = ("the quick brown fox jumps over the lazy dog and runs far").split()


def make_corpus(directory: str, n_files: int, lines_per_file: int) -> List[str]:
    paths = []
    for i in range(n_files):
        path = os.path.join(directory, f"in_{i}.txt")
        with open(path, "w") as f:
            for line in range(lines_per_file):
                offset = (i + line) % len(_WORDS)
                f.write(" ".join(_WORDS[offset:] + _WORDS[:offset]) + "\n")
        paths.append(path)
    return paths


def run_job(
    inputs: List[str],
    outdir: str,
    impl: str,
    event_log: Optional[str] = None,
    telemetry: str = "off",
) -> Dict[str, Any]:
    """Run WordCount once; returns {"seconds": wall, "report": report}."""
    overrides: Dict[str, Any] = {"telemetry": telemetry}
    if event_log:
        overrides["event_log"] = event_log
    started = time.perf_counter()
    program = run_program(
        WordCountCombined, inputs + [outdir], impl=impl, **overrides
    )
    seconds = time.perf_counter() - started
    return {"seconds": seconds, "report": program.metrics_report}


def measure(
    impl: str, n_files: int, lines_per_file: int, repeat: int
) -> Dict[str, float]:
    """Derive the gated overhead numbers from real runs.

    Plain, event-logged, and telemetry-on runs are interleaved round by
    round (as in bench_shuffle) and each side keeps its best time, so
    slow drift in machine load cannot masquerade as instrumentation
    overhead.  The plain and event legs pin ``--mrs-telemetry off`` so
    each fraction isolates exactly one plane.
    """
    workdir = tempfile.mkdtemp(prefix="bench_overhead_")
    try:
        inputs = make_corpus(workdir, n_files, lines_per_file)
        best_plain = float("inf")
        best_events = float("inf")
        best_telemetry = float("inf")
        report: Dict[str, Any] = {}
        for round_index in range(repeat):
            outdir = os.path.join(workdir, f"out_plain_{round_index}")
            plain = run_job(inputs, outdir, impl)
            best_plain = min(best_plain, plain["seconds"])
            report = plain["report"]
            outdir = os.path.join(workdir, f"out_events_{round_index}")
            log = os.path.join(workdir, f"events_{round_index}.jsonl")
            events = run_job(inputs, outdir, impl, event_log=log)
            best_events = min(best_events, events["seconds"])
            outdir = os.path.join(workdir, f"out_telemetry_{round_index}")
            telemetry = run_job(inputs, outdir, impl, telemetry="on")
            best_telemetry = min(best_telemetry, telemetry["seconds"])
        operations = report.get("operations") or []
        per_operation = max(
            (float(op.get("overhead_seconds") or 0.0) for op in operations),
            default=0.0,
        )
        return {
            "startup_seconds": export.startup_seconds(report),
            "overhead_seconds_per_operation": per_operation,
            "event_overhead_fraction": max(
                0.0, (best_events - best_plain) / best_plain
            ),
            "telemetry_overhead_fraction": max(
                0.0, (best_telemetry - best_plain) / best_plain
            ),
            "job_seconds": best_plain,
            "operations": float(len(operations)),
            "task_count": float(
                (report.get("summary") or {}).get("task_count") or 0
            ),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


#: Measurement keys the budget gates (the rest are context).
GATED = (
    "startup_seconds",
    "overhead_seconds_per_operation",
    "event_overhead_fraction",
    "telemetry_overhead_fraction",
)


def load_budget(path: str) -> Dict[str, float]:
    with open(path) as f:
        doc = json.load(f)
    budgets = doc.get("budgets")
    if not isinstance(budgets, dict):
        raise ValueError(f"{path}: no 'budgets' object")
    return {key: float(value) for key, value in budgets.items()}


def check_budget(
    measured: Dict[str, float], budget: Dict[str, float]
) -> List[str]:
    """Budget violations, as human-readable strings (empty = pass)."""
    violations = []
    for key in GATED:
        limit = budget.get(key)
        if limit is None:
            continue
        value = measured.get(key, 0.0)
        if value > limit:
            violations.append(
                f"{key}: measured {value:.4f} exceeds budget {limit:.4f}"
            )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--impl", default="serial",
                        help="backend to measure (default: serial)")
    parser.add_argument("--files", type=int, default=8)
    parser.add_argument("--lines", type=int, default=2_000)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload for CI: exercises the gate end to end",
    )
    parser.add_argument("--budget", default=DEFAULT_BUDGET,
                        help="budget JSON (default: checked-in budget)")
    parser.add_argument("--no-gate", action="store_true",
                        help="report only; never fail on budget violations")
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_overhead.json"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.files, args.lines, args.repeat = 4, 200, 2

    budget = load_budget(args.budget)
    measured = measure(args.impl, args.files, args.lines, args.repeat)
    violations = check_budget(measured, budget)

    headers = ["metric", "measured", "budget", "within"]
    rows = []
    for key in GATED:
        limit = budget.get(key)
        rows.append(
            [
                key,
                round(measured[key], 4),
                limit if limit is not None else "-",
                "no" if any(v.startswith(key + ":") for v in violations)
                else "yes",
            ]
        )
    notes = [
        f"workload: WordCount on {args.files} files x {args.lines} lines, "
        f"impl={args.impl}, best of {args.repeat} (plain vs event-logged "
        f"vs telemetry-on interleaved)",
        f"job wall time {fmt_seconds(measured['job_seconds'])}, "
        f"{int(measured['operations'])} operations, "
        f"{int(measured['task_count'])} tasks",
        "paper's claims: ~2 s startup, ~0.3 s overhead per operation",
    ]
    if args.smoke:
        notes.append("smoke run: tiny workload; gates are tripwires, "
                     "not precise timings")
    for violation in violations:
        notes.append(f"BUDGET VIOLATION: {violation}")
    print_table("Overhead budget gate", headers, rows, notes)
    write_json_table(
        os.path.abspath(args.out),
        "Overhead budget gate",
        headers,
        rows,
        notes,
    )
    print(f"wrote {os.path.abspath(args.out)}")
    if violations and not args.no_gate:
        for violation in violations:
            print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
