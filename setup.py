"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` with this shim works everywhere. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
